// Tests for the introspection layer: snapshot serialization (JSON +
// Prometheus), the rolling-window SLO tracker, the per-request flight
// recorder, and request-scoped trace-context propagation through the
// sharded serving engine.
//
// The load-bearing properties:
//   * Snapshots taken while every metric type is being mutated concurrently
//     are always well-formed (never torn into invalid JSON / exposition).
//   * The Prometheus exposition follows the text format: TYPE lines,
//     cumulative `le` buckets ending at +Inf == _count.
//   * The flight recorder is a true ring: capacity bounds memory, snapshot
//     returns the newest records oldest-first across wraparound.
//   * TraceContext propagates across queue hand-off and work stealing: every
//     span on a request's path carries its request_id and the index of the
//     worker that executed it, including stolen requests.
//
// Runs under the `concurrency` CTest label; a TSan build (-DDCDIFF_TSAN=ON)
// exercises the same binary for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace dcdiff {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream f(p);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---- bucket policy ----

TEST(SloLatencyBounds, CoverSubMillisecondToTenSeconds) {
  const std::vector<double> b = obs::Histogram::slo_latency_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1e-4);  // 100us: resolves light-load queue waits
  EXPECT_DOUBLE_EQ(b.back(), 30.0);   // overflow catch-all past the deadline horizon
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "bounds must be strictly increasing";
  }
  // 1-2-5 within each decade: every bound is 1, 2, or 5 times a power of 10
  // (10.0 and 30.0 close the range).
  bool has_10ms = false, has_1s = false;
  for (const double v : b) {
    if (v == 1e-2) has_10ms = true;
    if (v == 1.0) has_1s = true;
  }
  EXPECT_TRUE(has_10ms);
  EXPECT_TRUE(has_1s);
}

// ---- flight recorder ----

TEST(FlightRecorder, RingWrapsOldestFirst) {
  obs::FlightRecorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  EXPECT_EQ(fr.size(), 0u);
  for (uint64_t i = 1; i <= 20; ++i) {
    obs::RequestRecord r;
    r.request_id = i;
    r.e2e_seconds = static_cast<double>(i) * 0.001;
    fr.record(r);
  }
  EXPECT_EQ(fr.size(), 8u);
  EXPECT_EQ(fr.total_recorded(), 20u);
  const std::vector<obs::RequestRecord> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // The 8 newest records, oldest -> newest: 13..20.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request_id, 13u + i);
  }
}

TEST(FlightRecorder, PartialFillSnapshotsInOrder) {
  obs::FlightRecorder fr(16);
  for (uint64_t i = 1; i <= 5; ++i) {
    obs::RequestRecord r;
    r.request_id = i;
    fr.record(r);
  }
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request_id, i + 1);
  }
}

TEST(FlightRecorder, DumpJsonIsWellFormed) {
  const auto path = std::filesystem::temp_directory_path() /
                    "dcdiff_test_flight_dump.json";
  obs::FlightRecorder fr(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    obs::RequestRecord r;
    r.request_id = i;
    r.status = i == 6 ? "deadline_exceeded" : "ok";
    r.deadline_missed = i == 6;
    fr.record(r);
  }
  ASSERT_TRUE(fr.dump_json(path.string(), "deadline_miss"));
  const std::string text = read_file(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(obs::json_validate(text)) << text;
  EXPECT_NE(text.find("\"reason\":\"deadline_miss\""), std::string::npos);
  EXPECT_NE(text.find("\"deadline_missed\":true"), std::string::npos);
}

TEST(FlightRecorder, RequestRecordJsonValidates) {
  obs::RequestRecord r;
  r.request_id = 42;
  r.session_id = 7;
  r.worker = 2;
  r.routed_worker = 0;
  r.stolen = true;
  r.status = "ok";
  const std::string j = obs::request_record_json(r);
  EXPECT_TRUE(obs::json_validate(j)) << j;
  EXPECT_NE(j.find("\"stolen\":true"), std::string::npos);
}

// ---- SLO tracker ----

TEST(SloTracker, WindowAggregatesOutcomes) {
  obs::SloTracker slo(60);
  for (int i = 0; i < 20; ++i) slo.record(0.010, true, false);
  for (int i = 0; i < 4; ++i) slo.record(0.500, false, true);
  slo.record(0.050, false, false);  // internal error
  const obs::SloTracker::Window w = slo.window(10);
  EXPECT_EQ(w.completed, 25u);
  EXPECT_EQ(w.ok, 20u);
  EXPECT_EQ(w.deadline_missed, 4u);
  EXPECT_EQ(w.errors, 1u);
  EXPECT_NEAR(w.miss_rate, 4.0 / 25.0, 1e-9);
  EXPECT_GT(w.goodput, 0.0);
  // p99 over {20 x 10ms, 4 x 500ms, 1 x 50ms}: must land in the bucket
  // holding the 500ms mass ((0.5, 1.0] — values equal to a bound go to the
  // next bucket), far above the 10ms bulk.
  EXPECT_GE(w.p99_seconds, 0.5);
  EXPECT_LE(w.p99_seconds, 1.0);
}

TEST(SloTracker, WindowsJsonValidates) {
  obs::SloTracker slo(60);
  slo.record(0.010, true, false);
  const std::string j = slo.windows_json();
  EXPECT_TRUE(obs::json_validate(j)) << j;
  EXPECT_NE(j.find("\"10s\""), std::string::npos);
  EXPECT_NE(j.find("\"60s\""), std::string::npos);
}

// ---- exposition formats under concurrent mutation ----

// Line-level grammar check for the Prometheus text format: every line is a
// comment ("# ...") or "<name>[{labels}] <value>" with a legal metric name.
void expect_valid_prometheus(const std::string& text) {
  std::stringstream ss(text);
  std::string line;
  int lines = 0;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    ++lines;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "bad comment: " << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    for (const char ch : name) {
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
      EXPECT_TRUE(ok) << "bad metric name char in: " << line;
    }
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "bad value in: " << line;
  }
  EXPECT_GT(lines, 0);
}

TEST(StatsExposition, SnapshotsStayWellFormedUnderConcurrentMutation) {
  obs::counter("test.stats.counter");
  obs::gauge("test.stats.gauge");
  obs::histogram("test.stats.hist", obs::Histogram::slo_latency_bounds());
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 3; ++t) {
    mutators.emplace_back([t, &stop] {
      obs::Counter& c = obs::counter("test.stats.counter");
      obs::Gauge& g = obs::gauge("test.stats.gauge");
      obs::Histogram& h = obs::histogram("test.stats.hist");
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        g.set(static_cast<double>(i % 97));
        h.observe(1e-4 * static_cast<double>((t + 1) * (1 + i % 1000)));
        ++i;
      }
    });
  }
  for (int iter = 0; iter < 25; ++iter) {
    const std::string j = obs::stats_json();
    ASSERT_TRUE(obs::json_validate(j)) << "iteration " << iter;
    expect_valid_prometheus(obs::stats_prometheus());
  }
  stop.store(true);
  for (auto& t : mutators) t.join();
}

TEST(StatsExposition, PrometheusHistogramBucketsAreCumulative) {
  obs::Histogram& h = obs::histogram("test.stats.cumhist", {0.1, 0.2, 0.5});
  h.reset();
  h.observe(0.05);
  h.observe(0.15);
  h.observe(0.15);
  h.observe(0.3);
  h.observe(9.0);  // overflow
  const std::string text = obs::stats_prometheus();
  // Pull this family's lines back out and check the cumulative contract.
  std::stringstream ss(text);
  std::string line;
  std::vector<uint64_t> cum;
  uint64_t count = 0, inf = 0;
  while (std::getline(ss, line)) {
    if (line.rfind("dcdiff_test_stats_cumhist_bucket{le=\"+Inf\"} ", 0) == 0) {
      inf = std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    } else if (line.rfind("dcdiff_test_stats_cumhist_bucket", 0) == 0) {
      cum.push_back(
          std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10));
    } else if (line.rfind("dcdiff_test_stats_cumhist_count ", 0) == 0) {
      count = std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    }
  }
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_EQ(cum[0], 1u);  // <= 0.1
  EXPECT_EQ(cum[1], 3u);  // <= 0.2
  EXPECT_EQ(cum[2], 4u);  // <= 0.5
  EXPECT_EQ(inf, 5u);     // everything
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(inf, count) << "+Inf bucket must equal _count";
}

TEST(StatsExposition, JsonSplicesServerSection) {
  const std::string j = obs::stats_json("{\"custom\":123}");
  ASSERT_TRUE(obs::json_validate(j)) << j;
  EXPECT_NE(j.find("\"server\":{\"custom\":123}"), std::string::npos);
}

// ---- trace-context primitives ----

TEST(TraceContext, DisabledTracingBindsNothing) {
  obs::set_trace_file("");
  obs::TraceContext ctx;
  ctx.worker = 1;
  ctx.request_ids = {5};
  obs::ScopedTraceContext bind(std::move(ctx));
  EXPECT_EQ(bind.id(), -1);
  EXPECT_EQ(obs::current_trace_context_id(), -1);
}

TEST(TraceContext, BindNestAndRender) {
  const auto path = std::filesystem::temp_directory_path() /
                    "dcdiff_test_tracectx.json";
  obs::set_trace_file(path.string());
  obs::clear_trace();
  obs::clear_trace_contexts();
  {
    obs::TraceContext outer;
    outer.worker = 0;
    outer.request_ids = {1, 2};
    obs::ScopedTraceContext o(std::move(outer));
    ASSERT_GE(o.id(), 0);
    EXPECT_EQ(obs::current_trace_context_id(), o.id());
    const std::string args = obs::trace_context_args_json(o.id());
    EXPECT_NE(args.find("\"worker\":0"), std::string::npos);
    EXPECT_NE(args.find("\"request_ids\":[1,2]"), std::string::npos);
    {
      obs::TraceContext inner;
      inner.worker = 2;
      inner.request_ids = {3};
      obs::ScopedTraceContext i(std::move(inner));
      EXPECT_NE(i.id(), o.id());
      EXPECT_EQ(obs::current_trace_context_id(), i.id());
    }
    EXPECT_EQ(obs::current_trace_context_id(), o.id());
  }
  EXPECT_EQ(obs::current_trace_context_id(), -1);
  EXPECT_EQ(obs::trace_context_args_json(-1), "");
  obs::clear_trace();
  obs::clear_trace_contexts();
  obs::set_trace_file("");
  std::filesystem::remove(path);
}

// ---- end-to-end through the serving engine ----

core::DCDiffConfig tiny_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "test_obsstats_ae";
  cfg.tag = "test_obsstats";
  return cfg;
}

class ObsStatsServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ =
        std::filesystem::temp_directory_path() / "dcdiff_obsstats_test_cache";
    std::filesystem::create_directories(cache_dir_);
    setenv("DCDIFF_CACHE_DIR", cache_dir_.c_str(), 1);
    model_ = core::ModelPool::instance().get(tiny_config());
  }
  static void TearDownTestSuite() {
    model_.reset();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }

  static std::vector<uint8_t> bitstream(int idx) {
    const Image img = data::dataset_image(data::DatasetId::kKodak, idx, 64);
    return core::sender_encode(img).bytes;
  }

  static std::filesystem::path cache_dir_;
  static std::shared_ptr<const core::DCDiffModel> model_;
};

std::filesystem::path ObsStatsServeTest::cache_dir_;
std::shared_ptr<const core::DCDiffModel> ObsStatsServeTest::model_;

// Every span on a request's path must carry the request's id and the index
// of the worker that executed it — across queue hand-off AND work stealing
// (all requests pinned to worker 0's queue; workers 1 and 2 only see work by
// stealing). Also exercises snapshot-under-load: stats_json /
// stats_prometheus are polled from the client thread mid-serving.
TEST_F(ObsStatsServeTest, TraceContextPropagatesAcrossStealingWorkers) {
  constexpr int kImages = 12;
  const auto trace_path = std::filesystem::temp_directory_path() /
                          "dcdiff_obsstats_trace.json";
  obs::set_trace_file(trace_path.string());
  obs::clear_trace();
  obs::clear_trace_contexts();

  serve::ServerConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 1;
  cfg.batch_timeout_ms = 0;  // no window: stealing, not batching, drains
  cfg.queue_capacity = kImages;
  uint64_t steals = 0;
  {
    serve::ReceiverServer server(cfg, model_);
    serve::Session session = server.open_session();
    serve::ReconstructRequest req;
    req.jfif = bitstream(0);
    req.worker_hint = 0;
    std::vector<std::future<serve::Result>> futs;
    for (int i = 0; i < kImages; ++i) {
      futs.push_back(session.submit_future(req));
    }
    // Live introspection while workers are mid-batch.
    for (int i = 0; i < 5; ++i) {
      const std::string j = server.stats_json();
      ASSERT_TRUE(obs::json_validate(j));
      expect_valid_prometheus(server.stats_prometheus());
    }
    for (auto& f : futs) {
      ASSERT_TRUE(f.get().status.is_ok());
    }
    steals = server.stats().steals;
    EXPECT_GT(steals, 0u) << "hinted skew must force the stealing path";

    // The flight recorder saw every request; stolen ones are flagged with
    // the executing (not routed) worker. Records land just after the future
    // is fulfilled, so give the workers a beat to finish the bookkeeping.
    for (int i = 0; i < 200; ++i) {
      if (server.flight_recorder().size() >= static_cast<size_t>(kImages)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto records = server.flight_recorder().snapshot();
    ASSERT_EQ(records.size(), static_cast<size_t>(kImages));
    uint64_t stolen_records = 0;
    for (const auto& r : records) {
      EXPECT_EQ(r.routed_worker, 0);
      EXPECT_GE(r.worker, 0);
      EXPECT_LT(r.worker, 3);
      if (r.stolen) {
        ++stolen_records;
        EXPECT_NE(r.worker, 0) << "a steal executed on the routed worker?";
      }
      EXPECT_GT(r.done_us, r.submit_us);
      EXPECT_GE(r.e2e_seconds, 0.0);
    }
    EXPECT_EQ(stolen_records, steals);
  }
  // Server destroyed: all spans closed. Flush and inspect the trace.
  ASSERT_TRUE(obs::flush_trace());
  const std::string trace = read_file(trace_path);
  ASSERT_TRUE(obs::json_validate(trace));

  // Collect the request ids attributed to serve.batch spans and check the
  // per-request queue-wait spans exist. String-level scan: each event is a
  // flat object, so the fields between two "name" keys belong to one event.
  std::set<uint64_t> batch_ids;
  int queue_wait_spans = 0;
  size_t pos = 0;
  while ((pos = trace.find("\"name\":\"", pos)) != std::string::npos) {
    pos += 8;
    const size_t name_end = trace.find('"', pos);
    const std::string name = trace.substr(pos, name_end - pos);
    const size_t next = trace.find("\"name\":\"", name_end);
    const std::string event = trace.substr(
        name_end, (next == std::string::npos ? trace.size() : next) - name_end);
    if (name == "serve.queue_wait") ++queue_wait_spans;
    if (name == "serve.batch" || name == "serve.queue_wait" ||
        name == "ddim_step" || name == "decode" || name == "conditioner") {
      // Spans on a request's path carry worker index + request ids.
      EXPECT_NE(event.find("\"worker\":"), std::string::npos)
          << name << " span lost its worker index";
      const size_t ids = event.find("\"request_ids\":[");
      EXPECT_NE(ids, std::string::npos) << name << " span lost its ids";
      if (name == "serve.batch" && ids != std::string::npos) {
        size_t p = ids + 15;
        while (p < event.size() && event[p] != ']') {
          char* end = nullptr;
          const uint64_t id = std::strtoull(event.c_str() + p, &end, 10);
          if (end == event.c_str() + p) break;
          batch_ids.insert(id);
          p = static_cast<size_t>(end - event.c_str());
          if (event[p] == ',') ++p;
        }
      }
    }
  }
  EXPECT_EQ(queue_wait_spans, kImages);
  // Every accepted request's id appears on some executed batch span.
  for (uint64_t id = 1; id <= kImages; ++id) {
    EXPECT_TRUE(batch_ids.count(id)) << "request " << id << " left no span";
  }

  obs::clear_trace();
  obs::clear_trace_contexts();
  obs::set_trace_file("");
  std::filesystem::remove(trace_path);
}

// The serving histograms must use the documented SLO bucket policy.
TEST_F(ObsStatsServeTest, ServeHistogramsUseSloBounds) {
  // Registered by run_batch during the previous test (or this run's server).
  obs::Histogram& e2e = obs::histogram("serve.e2e_seconds");
  obs::Histogram& qw = obs::histogram("serve.queue_wait_seconds");
  EXPECT_EQ(e2e.bounds(), obs::Histogram::slo_latency_bounds());
  EXPECT_EQ(qw.bounds(), obs::Histogram::slo_latency_bounds());
}

// A deliberately deadline-expired request must trigger an automatic flight
// recorder dump with reason "deadline_miss".
TEST_F(ObsStatsServeTest, DeadlineMissAutoDumpsFlightRecorder) {
  const auto dump_path = std::filesystem::temp_directory_path() /
                         "dcdiff_obsstats_flight.json";
  std::filesystem::remove(dump_path);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout_ms = 0;
  cfg.queue_capacity = 8;
  cfg.flight_recorder_path = dump_path.string();
  {
    serve::ReceiverServer server(cfg, model_);
    serve::Session session = server.open_session();
    // The first request occupies the single worker for tens of ms; the
    // rest expire on the queue behind it (1ms deadlines) and come back
    // degraded — the miss is still recorded and still triggers the dump.
    serve::ReconstructRequest req;
    req.jfif = bitstream(0);
    std::vector<std::future<serve::Result>> futs;
    futs.push_back(session.submit_future(req));
    serve::ReconstructRequest expired = req;
    expired.deadline_ms = 1;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(session.submit_future(expired));
    }
    int missed = 0;
    for (auto& f : futs) {
      const serve::Result r = f.get();
      ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
      if (r.outcome == serve::Outcome::kDegraded) ++missed;
    }
    ASSERT_GT(missed, 0) << "test setup failed to expire any request";
    // The dump happens in the worker thread right after the futures are
    // fulfilled; poll briefly rather than racing it.
    bool dumped = false;
    for (int i = 0; i < 200 && !dumped; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::string text = read_file(dump_path);
      dumped = obs::json_validate(text) &&
               text.find("\"reason\":\"deadline_miss\"") != std::string::npos;
    }
    EXPECT_TRUE(dumped) << "no deadline_miss flight dump at " << dump_path;
    const auto w = server.slo_window(10);
    EXPECT_GT(w.deadline_missed, 0u);
    EXPECT_GT(w.completed, 0u);
  }
  // Shutdown rewrote the same file with the final state.
  const std::string text = read_file(dump_path);
  ASSERT_TRUE(obs::json_validate(text));
  EXPECT_NE(text.find("\"reason\":\"shutdown\""), std::string::npos);
  EXPECT_NE(text.find("\"deadline_missed\":true"), std::string::npos);
  std::filesystem::remove(dump_path);
}

// The periodic snapshot thread must refresh the serve.slo.* gauges and
// rewrite the stats files on its interval.
TEST_F(ObsStatsServeTest, SnapshotThreadWritesStatsFiles) {
  const auto stats_path = std::filesystem::temp_directory_path() /
                          "dcdiff_obsstats_periodic.json";
  std::filesystem::remove(stats_path);
  std::filesystem::remove(stats_path.string() + ".prom");
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.stats_interval_ms = 20;
  cfg.stats_path = stats_path.string();
  {
    serve::ReceiverServer server(cfg, model_);
    serve::Session session = server.open_session();
    serve::ReconstructRequest req;
    req.jfif = bitstream(0);
    ASSERT_TRUE(session.reconstruct(req).status.is_ok());
    bool wrote = false;
    for (int i = 0; i < 200 && !wrote; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::string text = read_file(stats_path);
      wrote = obs::json_validate(text) &&
              text.find("\"server\":") != std::string::npos;
    }
    EXPECT_TRUE(wrote) << "snapshot thread never wrote " << stats_path;
  }
  // Shutdown leaves a final consistent snapshot pair behind.
  const std::string json = read_file(stats_path);
  ASSERT_TRUE(obs::json_validate(json));
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"slo\":"), std::string::npos);
  const std::string prom = read_file(stats_path.string() + ".prom");
  expect_valid_prometheus(prom);
  EXPECT_NE(prom.find("dcdiff_serve_worker_queue_depth{worker=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("dcdiff_serve_slo_goodput{window=\"10s\"}"),
            std::string::npos);
  std::filesystem::remove(stats_path);
  std::filesystem::remove(stats_path.string() + ".prom");
}

}  // namespace
}  // namespace dcdiff
