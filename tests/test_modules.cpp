#include "nn/modules.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/cache.h"
#include "nn/optim.h"
#include "nn/rng.h"
#include "nn/serialize.h"

namespace dcdiff::nn {
namespace {

Tensor randn(std::vector<int> shape, Rng& rng) {
  std::vector<float> d(shape_numel(shape));
  for (float& v : d) v = rng.normal();
  return Tensor::from_data(std::move(shape), std::move(d));
}

TEST(Modules, Conv2dShapesAndParams) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  const Tensor y = conv(Tensor::zeros({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 8, 8}));
  std::vector<Tensor> p;
  conv.collect(p);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p[0].requires_grad());
  EXPECT_EQ(p[0].shape(), (std::vector<int>{8, 3, 3, 3}));
}

TEST(Modules, InitBoundedByFanIn) {
  Rng rng(2);
  Conv2d conv(4, 4, 3, 1, 1, rng);
  const float bound = 1.0f / std::sqrt(36.0f);
  for (float v : conv.w.value()) {
    EXPECT_LE(std::abs(v), bound + 1e-6f);
  }
}

TEST(Modules, LinearShapes) {
  Rng rng(3);
  Linear fc(10, 5, rng);
  EXPECT_EQ(fc(Tensor::zeros({4, 10})).shape(), (std::vector<int>{4, 5}));
}

TEST(Modules, GroupNormIdentityAtInit) {
  Rng rng(4);
  GroupNorm gn(8, 4);
  const Tensor x = randn({1, 8, 4, 4}, rng);
  const Tensor y = gn(x);
  // gamma=1, beta=0: output has per-group zero mean.
  double mean = 0;
  for (float v : y.value()) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(y.numel()), 0.0, 1e-4);
}

TEST(Modules, ResBlockPreservesShapeSameChannels) {
  Rng rng(5);
  ResBlock block(8, 8, 0, rng);
  const Tensor x = randn({1, 8, 8, 8}, rng);
  EXPECT_EQ(block(x).shape(), x.shape());
}

TEST(Modules, ResBlockChangesChannelsWithShortcut) {
  Rng rng(6);
  ResBlock block(8, 16, 0, rng);
  EXPECT_TRUE(block.has_shortcut);
  const Tensor x = randn({2, 8, 4, 4}, rng);
  EXPECT_EQ(block(x).shape(), (std::vector<int>{2, 16, 4, 4}));
}

TEST(Modules, ResBlockTimestepInjection) {
  Rng rng(7);
  ResBlock block(8, 8, 16, rng);
  const Tensor x = randn({2, 8, 4, 4}, rng);
  const Tensor temb = randn({2, 16}, rng);
  EXPECT_EQ(block(x, temb).shape(), x.shape());
  // Missing temb must be rejected when the block expects it.
  EXPECT_THROW(block(x), std::invalid_argument);
}

TEST(Modules, ResBlockGradFlowsToAllParams) {
  Rng rng(8);
  ResBlock block(4, 8, 8, rng);
  const Tensor x = randn({1, 4, 4, 4}, rng);
  const Tensor temb = randn({1, 8}, rng);
  Tensor loss = sum(block(x, temb));
  loss.backward();
  std::vector<Tensor> p;
  block.collect(p);
  for (Tensor& param : p) {
    double gnorm = 0;
    for (float g : param.grad()) gnorm += std::abs(g);
    EXPECT_GT(gnorm, 0.0) << "a parameter received no gradient";
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  // min (x - 3)^2 elementwise.
  Tensor x = Tensor::zeros({4}, true);
  Tensor target = Tensor::full({4}, 3.0f);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = mse_loss(x, target);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  for (float v : x.value()) EXPECT_NEAR(v, 3.0f, 1e-2);
}

TEST(Adam, LearnsLinearRegression) {
  Rng rng(9);
  Linear fc(3, 1, rng);
  // Ground-truth mapping y = 2a - b + 0.5c + 1.
  auto make_batch = [&](int n, Tensor& x, Tensor& y) {
    std::vector<float> xs, ys;
    for (int i = 0; i < n; ++i) {
      const float a = rng.uniform(-1, 1), b = rng.uniform(-1, 1),
                  c = rng.uniform(-1, 1);
      xs.insert(xs.end(), {a, b, c});
      ys.push_back(2 * a - b + 0.5f * c + 1.0f);
    }
    x = Tensor::from_data({n, 3}, std::move(xs));
    y = Tensor::from_data({n, 1}, std::move(ys));
  };
  std::vector<Tensor> params;
  fc.collect(params);
  Adam opt(params, 0.05f);
  for (int step = 0; step < 300; ++step) {
    Tensor x, y;
    make_batch(16, x, y);
    Tensor loss = mse_loss(fc(x), y);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(fc.w.value()[0], 2.0f, 0.1f);
  EXPECT_NEAR(fc.w.value()[1], -1.0f, 0.1f);
  EXPECT_NEAR(fc.w.value()[2], 0.5f, 0.1f);
  EXPECT_NEAR(fc.b.value()[0], 1.0f, 0.1f);
}

TEST(Adam, SkipsParamsWithoutGrads) {
  Tensor x = Tensor::full({2}, 1.0f, true);
  Adam opt({x}, 0.1f);
  opt.step();  // no backward happened; must not touch values
  EXPECT_FLOAT_EQ(x.value()[0], 1.0f);
}

TEST(Serialize, RoundTripPreservesValues) {
  Rng rng(10);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  std::vector<Tensor> params;
  conv.collect(params);
  const std::string path = ::testing::TempDir() + "/dcdiff_params.bin";
  save_params(params, path);

  Rng rng2(999);
  Conv2d conv2(2, 3, 3, 1, 1, rng2);
  std::vector<Tensor> params2;
  conv2.collect(params2);
  ASSERT_TRUE(load_params(params2, path));
  for (size_t i = 0; i < params.size(); ++i) {
    for (size_t j = 0; j < params[i].numel(); ++j) {
      EXPECT_FLOAT_EQ(params2[i].value()[j], params[i].value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
  std::vector<Tensor> params = {Tensor::zeros({2})};
  EXPECT_FALSE(load_params(params, "/nonexistent/none.bin"));
}

TEST(Serialize, ShapeMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/dcdiff_mismatch.bin";
  std::vector<Tensor> a = {Tensor::zeros({4})};
  save_params(a, path);
  std::vector<Tensor> b = {Tensor::zeros({5})};
  EXPECT_THROW(load_params(b, path), std::runtime_error);
  std::vector<Tensor> c = {Tensor::zeros({4}), Tensor::zeros({1})};
  EXPECT_THROW(load_params(c, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Cache, PathsLiveUnderCacheDir) {
  const std::string p = cache_path("foo.bin");
  EXPECT_NE(p.find("foo.bin"), std::string::npos);
}

}  // namespace
}  // namespace dcdiff::nn
