// Restart-interval (DRI/RSTn) support: round-trip fidelity and the error
// containment property that motivates restarts on lossy links.
#include <gtest/gtest.h>

#include "data/datasets.h"
#include "jpeg/codec.h"
#include "metrics/metrics.h"
#include "nn/rng.h"

namespace dcdiff::jpeg {
namespace {

CoeffImage coeffs_with_restart(int interval, int size = 64) {
  const Image img = data::dataset_image(data::DatasetId::kKodak, 1, size);
  CoeffImage ci = forward_transform(img, 50);
  ci.restart_interval = interval;
  return ci;
}

class RestartRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RestartRoundTrip, CoefficientsPreserved) {
  const CoeffImage ci = coeffs_with_restart(GetParam());
  const auto bytes = encode_jfif(ci);
  const CoeffImage back = decode_jfif(bytes);
  EXPECT_EQ(back.restart_interval, GetParam());
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      for (int k = 0; k < kBlockSamples; ++k) {
        ASSERT_EQ(back.comps[c].blocks[b][k], ci.comps[c].blocks[b][k])
            << "interval " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, RestartRoundTrip,
                         ::testing::Values(1, 2, 4, 7, 16, 63));

TEST(Restart, MarkersPresentInStream) {
  const CoeffImage ci = coeffs_with_restart(4);
  const auto bytes = encode_jfif(ci);
  int rst_count = 0;
  bool dri = false;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0xFF && bytes[i + 1] >= 0xD0 && bytes[i + 1] <= 0xD7) {
      ++rst_count;
    }
    if (bytes[i] == 0xFF && bytes[i + 1] == 0xDD) dri = true;
  }
  EXPECT_TRUE(dri);
  // 64 MCUs (8x8 blocks of a 64x64 4:4:4 image) / interval 4 => 15 RSTs.
  EXPECT_EQ(rst_count, 15);
}

TEST(Restart, MarkerIndicesCycleModulo8) {
  const CoeffImage ci = coeffs_with_restart(1);
  const auto bytes = encode_jfif(ci);
  int expected = 0;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0xFF && bytes[i + 1] >= 0xD0 && bytes[i + 1] <= 0xD7) {
      EXPECT_EQ(bytes[i + 1] - 0xD0, expected & 7);
      ++expected;
    }
  }
  EXPECT_GT(expected, 8);  // cycled at least once
}

TEST(Restart, StreamLargerButDecodable420) {
  const Image img = data::dataset_image(data::DatasetId::kInria, 2, 64);
  CoeffImage ci = forward_transform(img, 50, ChromaFormat::k420);
  const size_t plain = encode_jfif(ci).size();
  ci.restart_interval = 2;
  const auto bytes = encode_jfif(ci);
  EXPECT_GT(bytes.size(), plain);  // markers + padding cost something
  const CoeffImage back = decode_jfif(bytes);
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      for (int k = 0; k < kBlockSamples; ++k) {
        ASSERT_EQ(back.comps[c].blocks[b][k], ci.comps[c].blocks[b][k]);
      }
    }
  }
}

TEST(Restart, ErrorContainedToDamagedSegment) {
  // Corrupt one byte inside one restart segment: with restarts the rest of
  // the image survives; decoded image stays close to the clean decode.
  const Image img = data::dataset_image(data::DatasetId::kUrban100, 2, 64);
  CoeffImage ci = forward_transform(img, 50);
  ci.restart_interval = 4;
  auto bytes = encode_jfif(ci);
  const Image clean = inverse_transform(decode_jfif(bytes));

  // Find the third RST marker and corrupt a byte shortly after it.
  int rst_seen = 0;
  size_t corrupt_at = 0;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0xFF && bytes[i + 1] >= 0xD0 && bytes[i + 1] <= 0xD7) {
      if (++rst_seen == 3) {
        corrupt_at = i + 4;
        break;
      }
    }
  }
  ASSERT_GT(corrupt_at, 0u);
  bytes[corrupt_at] ^= 0x55;

  Image damaged(1, 1, ColorSpace::kGray);
  ASSERT_NO_THROW(damaged = inverse_transform(decode_jfif(bytes)));
  // Most of the image is unaffected: quality vs the clean decode stays high
  // compared to a fully corrupted stream.
  EXPECT_GT(metrics::psnr(clean, damaged), 13.0);
  // And a large fraction of pixels are bit-identical.
  size_t same = 0, total = 0;
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < clean.plane(c).size(); ++i) {
      ++total;
      if (clean.plane(c)[i] == damaged.plane(c)[i]) ++same;
    }
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.5);
}

TEST(Restart, ZeroIntervalUnchangedFormat) {
  const CoeffImage ci = coeffs_with_restart(0);
  const auto bytes = encode_jfif(ci);
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_FALSE(bytes[i] == 0xFF && bytes[i + 1] == 0xDD);
  }
}

}  // namespace
}  // namespace dcdiff::jpeg
