// Tests for anytime (checkpointed / early-exit) sampling, the StepGovernor,
// and the progressive ResultStream channel (PR 9).
//
// The load-bearing contracts:
//   * Determinism: reconstruct_batch_anytime run to its full step count is
//     bit-identical to the eager reconstruct_batch path — the checkpoint
//     hook observes z0 between the existing update statements and perturbs
//     no arithmetic.
//   * Early exit: stopping after k < N steps still yields valid (coarser)
//     images, and reports k honestly.
//   * Degraded service: a request whose deadline fires is answered with its
//     best checkpoint (Outcome::kDegraded), never kDeadlineExceeded, as
//     long as min_steps > 0.
//   * ResultStream: partial steps strictly increasing, terminal Result
//     always last and exactly once, bounded buffer drops oldest partials
//     without ever blocking the producer.
//
// Runs under the `concurrency` CTest label (3-worker progressive test); a
// TSan build exercises the same binary for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/codec.h"
#include "serve/governor.h"
#include "serve/server.h"
#include "serve/stream.h"

namespace dcdiff::serve {
namespace {

core::DCDiffConfig tiny_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "test_anytime_ae";
  cfg.tag = "test_anytime";
  return cfg;
}

class ServeAnytimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ =
        std::filesystem::temp_directory_path() / "dcdiff_anytime_test_cache";
    std::filesystem::create_directories(cache_dir_);
    setenv("DCDIFF_CACHE_DIR", cache_dir_.c_str(), 1);
    model_ = core::ModelPool::instance().get(tiny_config());
  }
  static void TearDownTestSuite() {
    model_.reset();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }

  static std::vector<uint8_t> bitstream(int idx) {
    const Image img = data::dataset_image(data::DatasetId::kKodak, idx, 64);
    return core::sender_encode(img).bytes;
  }

  static double max_abs_diff(const Image& a, const Image& b) {
    if (a.width() != b.width() || a.height() != b.height() ||
        a.channels() != b.channels()) {
      return 1e9;
    }
    double m = 0;
    for (int c = 0; c < a.channels(); ++c) {
      const auto& pa = a.plane(c);
      const auto& pb = b.plane(c);
      for (size_t i = 0; i < pa.size(); ++i) {
        m = std::max(m, static_cast<double>(std::fabs(pa[i] - pb[i])));
      }
    }
    return m;
  }

  static std::filesystem::path cache_dir_;
  static std::shared_ptr<const core::DCDiffModel> model_;
};

std::filesystem::path ServeAnytimeTest::cache_dir_;
std::shared_ptr<const core::DCDiffModel> ServeAnytimeTest::model_;

// ---- model layer: checkpointed sampling ----

// The asserted acceptance gate: running the anytime path to its full step
// count — hook installed, never stopping — is bit-identical to today's
// reconstruct_batch on the eager path.
TEST_F(ServeAnytimeTest, FullStepAnytimeRunIsBitIdenticalToBatch) {
  const jpeg::CoeffImage c0 = jpeg::decode_jfif(bitstream(0));
  const jpeg::CoeffImage c1 = jpeg::decode_jfif(bitstream(1));

  core::set_plan_enabled(0);  // eager both sides; plans have no checkpoints
  const std::vector<const jpeg::CoeffImage*> batch = {&c0, &c1};
  const std::vector<Image> reference = model_->reconstruct_batch(batch);

  std::vector<core::AnytimeItem> items(2);
  items[0].coeffs = &c0;
  items[1].coeffs = &c1;
  int observed_steps = 0;
  core::AnytimeControl ctrl;
  ctrl.on_step = [&](int done, int total) {
    EXPECT_GT(done, observed_steps);  // monotone, one call per step
    EXPECT_LE(done, total);
    observed_steps = done;
    return core::AnytimeControl::Action::kContinue;
  };
  const core::AnytimeResult res = model_->reconstruct_batch_anytime(
      items, core::ReconstructOptions{}, ctrl);
  core::set_plan_enabled(-1);

  ASSERT_EQ(res.images.size(), 2u);
  EXPECT_FALSE(res.early_exit);
  EXPECT_GT(observed_steps, 0);
  for (size_t i = 0; i < res.images.size(); ++i) {
    EXPECT_EQ(res.steps_done[i], model_->config().ddim_steps);
    EXPECT_EQ(max_abs_diff(reference[i], res.images[i]), 0.0) << "image " << i;
  }
}

TEST_F(ServeAnytimeTest, EarlyStopReturnsValidCoarserImages) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));
  std::vector<core::AnytimeItem> items(1);
  items[0].coeffs = &coeffs;

  core::AnytimeControl ctrl;
  ctrl.on_step = [](int done, int) {
    return done >= 2 ? core::AnytimeControl::Action::kStop
                     : core::AnytimeControl::Action::kContinue;
  };
  const core::AnytimeResult res = model_->reconstruct_batch_anytime(
      items, core::ReconstructOptions{}, ctrl);
  ASSERT_EQ(res.images.size(), 1u);
  EXPECT_TRUE(res.early_exit);
  EXPECT_EQ(res.steps_done[0], 2);
  ASSERT_FALSE(res.images[0].empty());
  const Image full = model_->reconstruct(coeffs);
  EXPECT_EQ(res.images[0].width(), full.width());
  EXPECT_EQ(res.images[0].height(), full.height());
  // Coarser, not garbage: still a plausibly-ranged image.
  EXPECT_GT(max_abs_diff(res.images[0], full), 0.0);
}

TEST_F(ServeAnytimeTest, EmitPartialDeliversMidSamplingCheckpoints) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));
  std::vector<core::AnytimeItem> items(1);
  items[0].coeffs = &coeffs;

  std::vector<int> partial_steps;
  std::vector<double> proxies;
  core::AnytimeControl ctrl;
  ctrl.on_step = [](int done, int total) {
    return done < total ? core::AnytimeControl::Action::kEmitPartial
                        : core::AnytimeControl::Action::kContinue;
  };
  ctrl.on_partial = [&](int item, Image image, int steps_done,
                        double psnr_proxy) {
    EXPECT_EQ(item, 0);
    EXPECT_FALSE(image.empty());
    partial_steps.push_back(steps_done);
    proxies.push_back(psnr_proxy);
  };
  const core::AnytimeResult res = model_->reconstruct_batch_anytime(
      items, core::ReconstructOptions{}, ctrl);
  EXPECT_FALSE(res.early_exit);
  const int total = model_->config().ddim_steps;
  ASSERT_EQ(partial_steps.size(), static_cast<size_t>(total - 1));
  for (size_t i = 0; i < partial_steps.size(); ++i) {
    EXPECT_EQ(partial_steps[i], static_cast<int>(i) + 1);
    EXPECT_GE(proxies[i], 0.0);
  }
}

// ---- StepGovernor unit behaviour ----

TEST(StepGovernorTest, DisabledWithoutDepthSlope) {
  StepGovernor g({/*full_steps=*/8, /*min_steps=*/2, /*depth_per_step=*/0});
  EXPECT_FALSE(g.enabled());
  EXPECT_EQ(g.plan_steps(0), 8);
  EXPECT_EQ(g.plan_steps(1000), 8);
}

TEST(StepGovernorTest, ShedsOneStepPerDepthUnitDownToFloor) {
  StepGovernor g({/*full_steps=*/8, /*min_steps=*/2, /*depth_per_step=*/2});
  EXPECT_TRUE(g.enabled());
  EXPECT_EQ(g.plan_steps(0), 8);
  EXPECT_EQ(g.plan_steps(1), 8);   // under one slope unit: no shed
  EXPECT_EQ(g.plan_steps(2), 7);
  EXPECT_EQ(g.plan_steps(8), 4);
  EXPECT_EQ(g.plan_steps(1000), 2);  // floored at min_steps
}

TEST(StepGovernorTest, ClampsDegenerateConfigs) {
  StepGovernor g({/*full_steps=*/0, /*min_steps=*/9, /*depth_per_step=*/1});
  EXPECT_EQ(g.plan_steps(0), 1);    // full clamped up to 1
  EXPECT_EQ(g.plan_steps(100), 1);  // min clamped into [1, full]
}

// The floor boundary exactly: at the depth where the shed count reaches
// full - min the governor lands on min_steps precisely, one unit shallower
// it is one step above, and any deeper depth stays pinned at min — never
// below.
TEST(StepGovernorTest, LandsOnMinStepsExactlyAtThresholdDepth) {
  StepGovernor g({/*full_steps=*/8, /*min_steps=*/2, /*depth_per_step=*/2});
  // (full - min) * depth_per_step = 12 is the first depth that reaches min.
  EXPECT_EQ(g.plan_steps(11), 3);
  EXPECT_EQ(g.plan_steps(12), 2);
  EXPECT_EQ(g.plan_steps(13), 2);
  EXPECT_EQ(g.plan_steps(1u << 20), 2);
  for (size_t d = 0; d <= 64; ++d) {
    EXPECT_GE(g.plan_steps(d), 2) << "depth " << d;
  }
}

TEST(StepGovernorTest, PlanStepsIsMonotoneNonIncreasingWithinBounds) {
  StepGovernor g({/*full_steps=*/10, /*min_steps=*/3, /*depth_per_step=*/3});
  int prev = g.plan_steps(0);
  EXPECT_EQ(prev, 10);
  for (size_t d = 1; d <= 128; ++d) {
    const int s = g.plan_steps(d);
    EXPECT_LE(s, prev) << "depth " << d;
    EXPECT_GE(s, 3);
    EXPECT_LE(s, 10);
    prev = s;
  }
  EXPECT_EQ(prev, 3);  // deep enough to have reached the floor
}

// min_steps == full_steps means the governor is a no-op even when enabled:
// there is nothing between the ceiling and the floor to shed.
TEST(StepGovernorTest, MinEqualToFullNeverSheds) {
  StepGovernor g({/*full_steps=*/6, /*min_steps=*/6, /*depth_per_step=*/1});
  EXPECT_TRUE(g.enabled());
  EXPECT_EQ(g.plan_steps(0), 6);
  EXPECT_EQ(g.plan_steps(1), 6);
  EXPECT_EQ(g.plan_steps(1u << 20), 6);
}

// A min_steps of 0 in the raw config clamps to 1: the governor never plans
// a zero-step batch no matter the depth.
TEST(StepGovernorTest, ZeroMinStepsClampsToOneStepFloor) {
  StepGovernor g({/*full_steps=*/4, /*min_steps=*/0, /*depth_per_step=*/1});
  EXPECT_EQ(g.plan_steps(1u << 20), 1);
}

// ---- ResultStream channel semantics ----

TEST(ResultStreamTest, PartialsInOrderThenTerminalExactlyOnce) {
  auto state = std::make_shared<detail::StreamState>();
  state->want_partials = true;
  for (int s = 1; s <= 3; ++s) {
    Partial p;
    p.step = s;
    detail::push_partial(state, std::move(p));
  }
  Result r;
  r.status = Status::ok();
  r.outcome = Outcome::kComplete;
  detail::push_result(state, std::move(r));

  ResultStream stream = ResultStream(state);
  ResultStream::Event ev;
  int last_step = 0;
  int partials = 0;
  bool saw_terminal = false;
  while (stream.next(&ev)) {
    if (ev.terminal) {
      EXPECT_FALSE(saw_terminal);
      saw_terminal = true;
      EXPECT_EQ(ev.result.outcome, Outcome::kComplete);
    } else {
      EXPECT_FALSE(saw_terminal);  // terminal is always last
      EXPECT_GT(ev.partial.step, last_step);
      last_step = ev.partial.step;
      ++partials;
    }
  }
  EXPECT_TRUE(saw_terminal);
  EXPECT_EQ(partials, 3);
  EXPECT_FALSE(stream.next(&ev));  // exhausted stays exhausted
  // wait() after consumption still returns the same terminal Result.
  EXPECT_EQ(stream.wait().outcome, Outcome::kComplete);
}

TEST(ResultStreamTest, BoundedBufferDropsOldestNeverTheResult) {
  auto state = std::make_shared<detail::StreamState>();
  state->want_partials = true;
  state->capacity = 2;
  for (int s = 1; s <= 5; ++s) {
    Partial p;
    p.step = s;
    detail::push_partial(state, std::move(p));
  }
  Result r;
  r.status = Status::ok();
  r.outcome = Outcome::kDegraded;
  detail::push_result(state, std::move(r));

  ResultStream stream = ResultStream(state);
  EXPECT_EQ(stream.dropped_partials(), 3u);
  ResultStream::Event ev;
  ASSERT_TRUE(stream.next(&ev));
  EXPECT_FALSE(ev.terminal);
  EXPECT_EQ(ev.partial.step, 4);  // oldest three displaced
  ASSERT_TRUE(stream.next(&ev));
  EXPECT_EQ(ev.partial.step, 5);
  ASSERT_TRUE(stream.next(&ev));
  EXPECT_TRUE(ev.terminal);
  EXPECT_EQ(ev.result.outcome, Outcome::kDegraded);
}

TEST(ResultStreamTest, FinalOnlyStreamsIgnorePartials) {
  auto state = std::make_shared<detail::StreamState>();
  ASSERT_FALSE(state->want_partials);  // the kFinalOnly default
  Partial p;
  p.step = 1;
  detail::push_partial(state, std::move(p));
  Result r;
  r.status = Status::ok();
  r.outcome = Outcome::kComplete;
  detail::push_result(state, std::move(r));
  ResultStream stream = ResultStream(state);
  ResultStream::Event ev;
  ASSERT_TRUE(stream.next(&ev));
  EXPECT_TRUE(ev.terminal);  // the partial was never buffered
  EXPECT_EQ(stream.dropped_partials(), 0u);
}

// ---- served anytime behaviour ----

// A deadline that fires once sampling is underway must still be answered
// with a decodable image: kDegraded, never kDeadlineExceeded (min_steps >= 1
// checkpoints exist by the time the hook can stop).
TEST_F(ServeAnytimeTest, MidSamplingDeadlineYieldsDegradedImage) {
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_timeout_ms = 0;
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();

  ReconstructRequest req;
  req.jfif = bitstream(0);
  req.deadline_ms = 1;  // expires mid-queue or mid-sampling, never met
  const Result r = session.reconstruct(req);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_NE(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.outcome, Outcome::kDegraded);
  EXPECT_GE(r.steps_done, 1);
  EXPECT_LT(r.steps_done, r.steps_target);
  EXPECT_FALSE(r.image.empty());
  EXPECT_GE(server.stats().degraded, 1u);
}

// Progressive delivery through a 3-worker server: every stream yields
// strictly increasing partial steps, then exactly one terminal Result; the
// producer never blocks on unread partials (bounded drop-oldest buffer).
TEST_F(ServeAnytimeTest, ProgressiveStreamsOrderedAcrossThreeWorkers) {
  constexpr int kRequests = 6;
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 2;
  cfg.queue_capacity = kRequests;
  cfg.partial_interval = 1;  // a partial after every DDIM step
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();

  std::vector<ResultStream> streams;
  for (int i = 0; i < kRequests; ++i) {
    ReconstructRequest req;
    req.jfif = bitstream(i % 3);
    req.delivery = DeliveryMode::kProgressive;
    streams.push_back(session.submit(req));
  }

  std::atomic<int> total_partials{0};
  std::vector<std::thread> consumers;
  std::vector<int> failures(kRequests, 0);
  for (int i = 0; i < kRequests; ++i) {
    consumers.emplace_back([&, i] {
      ResultStream::Event ev;
      int last_step = 0;
      bool saw_terminal = false;
      while (streams[static_cast<size_t>(i)].next(&ev)) {
        if (ev.terminal) {
          if (saw_terminal || ev.result.outcome != Outcome::kComplete ||
              ev.result.image.empty()) {
            ++failures[static_cast<size_t>(i)];
          }
          saw_terminal = true;
        } else {
          if (saw_terminal || ev.partial.step <= last_step ||
              ev.partial.image.empty()) {
            ++failures[static_cast<size_t>(i)];
          }
          last_step = ev.partial.step;
          ++total_partials;
        }
      }
      if (!saw_terminal) ++failures[static_cast<size_t>(i)];
    });
  }
  for (auto& t : consumers) t.join();
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(failures[static_cast<size_t>(i)], 0) << "stream " << i;
  }
  // partial_interval=1 over ddim_steps=4: up to 3 partials per request
  // (dropped ones excluded from delivery but counted by the server).
  EXPECT_GT(total_partials.load(), 0);
  const auto stats = server.stats();
  EXPECT_GE(stats.partials, static_cast<uint64_t>(total_partials.load()));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
}

// Load shedding: with a 1-step-per-queued-request governor slope and a
// burst of latency-tier requests through one worker, later batches run
// shortened and complete as kDegraded.
TEST_F(ServeAnytimeTest, GovernorShedsStepsUnderLatencyTierBurst) {
  constexpr int kRequests = 8;
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_timeout_ms = 0;
  cfg.queue_capacity = kRequests;
  cfg.governor_depth_per_step = 1;
  cfg.min_steps = 2;  // shed batches must stop at this floor, never below
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();

  std::vector<std::future<Result>> futs;
  for (int i = 0; i < kRequests; ++i) {
    ReconstructRequest req;
    req.jfif = bitstream(0);
    req.tier = QosTier::kLatency;
    futs.push_back(session.submit_future(req));
  }
  int complete = 0, degraded = 0;
  for (auto& f : futs) {
    const Result r = f.get();
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    ASSERT_FALSE(r.image.empty());
    EXPECT_GE(r.steps_done, cfg.min_steps);  // the floor holds under load
    if (r.outcome == Outcome::kDegraded) {
      EXPECT_LT(r.steps_done, r.steps_target);
      ++degraded;
    } else {
      ++complete;
    }
  }
  EXPECT_EQ(complete + degraded, kRequests);
  // The burst outruns the worker, so at least one later batch saw a deep
  // queue and shed steps.
  const auto stats = server.stats();
  EXPECT_GT(stats.governor_sheds, 0u);
  EXPECT_GT(stats.degraded, 0u);
  EXPECT_EQ(stats.degraded, static_cast<uint64_t>(degraded));
}

// Quality-tier requests are never governed: same burst, kQuality tier, all
// results complete at the full step count.
TEST_F(ServeAnytimeTest, QualityTierIsNeverGoverned) {
  constexpr int kRequests = 4;
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_timeout_ms = 0;
  cfg.queue_capacity = kRequests;
  cfg.governor_depth_per_step = 1;
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();

  std::vector<std::future<Result>> futs;
  for (int i = 0; i < kRequests; ++i) {
    ReconstructRequest req;
    req.jfif = bitstream(0);
    futs.push_back(session.submit_future(req));  // default kQuality
  }
  for (auto& f : futs) {
    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::kComplete);
    EXPECT_EQ(r.steps_done, r.steps_target);
  }
  EXPECT_EQ(server.stats().governor_sheds, 0u);
}

}  // namespace
}  // namespace dcdiff::serve
