#include "jpeg/progressive.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "metrics/metrics.h"

namespace dcdiff::jpeg {
namespace {

CoeffImage sample_coeffs(int size = 64, int quality = 50,
                         ChromaFormat fmt = ChromaFormat::k444) {
  return forward_transform(
      data::dataset_image(data::DatasetId::kKodak, 2, size), quality, fmt);
}

TEST(Progressive, DetectsSOF2) {
  const CoeffImage ci = sample_coeffs();
  EXPECT_TRUE(is_progressive(encode_progressive(ci)));
  EXPECT_FALSE(is_progressive(encode_jfif(ci)));
}

class ProgressiveRoundTrip : public ::testing::TestWithParam<ChromaFormat> {};

TEST_P(ProgressiveRoundTrip, CoefficientsPreserved) {
  const CoeffImage ci = sample_coeffs(64, 50, GetParam());
  const CoeffImage back = decode_progressive(encode_progressive(ci));
  ASSERT_EQ(back.comps.size(), ci.comps.size());
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    ASSERT_EQ(back.comps[c].blocks.size(), ci.comps[c].blocks.size());
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      for (int k = 0; k < kBlockSamples; ++k) {
        ASSERT_EQ(back.comps[c].blocks[b][k], ci.comps[c].blocks[b][k])
            << "comp " << c << " block " << b << " coef " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, ProgressiveRoundTrip,
                         ::testing::Values(ChromaFormat::k444,
                                           ChromaFormat::k420));

TEST(Progressive, GrayRoundTrip) {
  const Image gray =
      to_gray(data::dataset_image(data::DatasetId::kSet5, 0, 48));
  const CoeffImage ci = forward_transform(gray, 50);
  const CoeffImage back = decode_progressive(encode_progressive(ci));
  ASSERT_EQ(back.comps.size(), 1u);
  for (size_t b = 0; b < ci.comps[0].blocks.size(); ++b) {
    for (int k = 0; k < kBlockSamples; ++k) {
      ASSERT_EQ(back.comps[0].blocks[b][k], ci.comps[0].blocks[b][k]);
    }
  }
}

TEST(Progressive, CustomBandTiling) {
  ProgressiveConfig cfg;
  cfg.ac_bands = {{1, 2}, {3, 9}, {10, 35}, {36, 63}};
  const CoeffImage ci = sample_coeffs();
  const CoeffImage back = decode_progressive(encode_progressive(ci, cfg));
  for (size_t b = 0; b < ci.comps[0].blocks.size(); ++b) {
    for (int k = 0; k < kBlockSamples; ++k) {
      ASSERT_EQ(back.comps[0].blocks[b][k], ci.comps[0].blocks[b][k]);
    }
  }
}

TEST(Progressive, BadBandTilingThrows) {
  ProgressiveConfig cfg;
  cfg.ac_bands = {{1, 5}, {7, 63}};  // gap at 6
  EXPECT_THROW(encode_progressive(sample_coeffs(), cfg),
               std::invalid_argument);
  cfg.ac_bands = {{1, 63}, {1, 5}};
  EXPECT_THROW(encode_progressive(sample_coeffs(), cfg),
               std::invalid_argument);
}

TEST(Progressive, PreviewDecodesDCOnly) {
  const CoeffImage ci = sample_coeffs();
  const CoeffImage preview =
      decode_progressive_preview(encode_progressive(ci));
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      EXPECT_EQ(preview.comps[c].blocks[b][0], ci.comps[c].blocks[b][0]);
      for (int k = 1; k < kBlockSamples; ++k) {
        ASSERT_EQ(preview.comps[c].blocks[b][k], 0);
      }
    }
  }
}

TEST(Progressive, PreviewIsACoarseButRecognizableImage) {
  const Image original = data::dataset_image(data::DatasetId::kInria, 1, 64);
  const CoeffImage ci = forward_transform(original, 50);
  const Image preview =
      inverse_transform(decode_progressive_preview(encode_progressive(ci)));
  const Image full = inverse_transform(ci);
  const double p_preview = metrics::psnr(original, preview);
  const double p_full = metrics::psnr(original, full);
  EXPECT_GT(p_preview, 12.0);       // gross structure present
  EXPECT_GT(p_full, p_preview + 3); // but far from the full decode
}

TEST(Progressive, SizeComparableToBaseline) {
  // Progressive spectral selection with per-block EOBs costs a little more
  // than the baseline interleaved scan, but stays in the same ballpark.
  const CoeffImage ci = sample_coeffs();
  const size_t base = encode_jfif(ci).size();
  const size_t prog = encode_progressive(ci).size();
  EXPECT_LT(prog, base * 2);
  EXPECT_GT(prog, base / 2);
}

TEST(Progressive, GarbageInputThrows) {
  EXPECT_THROW(decode_progressive({0x12, 0x34}), std::runtime_error);
  std::vector<uint8_t> bytes = encode_progressive(sample_coeffs());
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW(decode_progressive(bytes), std::runtime_error);
}

}  // namespace
}  // namespace dcdiff::jpeg
