#include "core/regression.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/tensor_image.h"
#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

namespace dcdiff::core {
namespace {

class RegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto dir =
        std::filesystem::temp_directory_path() / "dcdiff_test_cache_reg";
    std::filesystem::create_directories(dir);
    setenv("DCDIFF_CACHE_DIR", dir.c_str(), 1);
    cfg_ = new AutoencoderConfig{4, 8, 8};
    unet_cfg_ = new UNetConfig{4, 8, 16};
    ae_ = new Autoencoder(*cfg_, 5);
  }
  static void TearDownTestSuite() {
    delete ae_;
    delete cfg_;
    delete unet_cfg_;
  }
  static AutoencoderConfig* cfg_;
  static UNetConfig* unet_cfg_;
  static Autoencoder* ae_;
};

AutoencoderConfig* RegressionTest::cfg_ = nullptr;
UNetConfig* RegressionTest::unet_cfg_ = nullptr;
Autoencoder* RegressionTest::ae_ = nullptr;

TEST_F(RegressionTest, PredictShape) {
  RegressionEstimator reg(*ae_, *unet_cfg_, 7);
  const nn::Tensor tilde = nn::Tensor::zeros({2, 3, 32, 32});
  const nn::Tensor z0 = reg.predict_z0(tilde);
  EXPECT_EQ(z0.shape(), (std::vector<int>{2, 4, 8, 8}));
  for (float v : z0.value()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST_F(RegressionTest, ShortTrainingRunsAndImprovesLatentFit) {
  RegressionEstimator reg(*ae_, *unet_cfg_, 8);
  // Measure z0 MSE on a held-out sample before and after a short train.
  const Image img = data::training_image(999999, 32);
  auto coeffs = jpeg::forward_transform(img, 50);
  jpeg::drop_dc(coeffs);
  const nn::Tensor tilde = tilde_to_tensor(jpeg::tilde_image(coeffs));
  nn::Tensor target;
  {
    nn::NoGradGuard no_grad;
    target = ae_->encode_dc(rgb_to_tensor(img));
  }
  auto z_mse = [&] {
    nn::NoGradGuard no_grad;
    return nn::mse_loss(reg.predict_z0(tilde), target).item();
  };
  const float before = z_mse();
  reg.train(/*steps=*/30, /*image_size=*/32, /*quality=*/50, /*seed=*/1);
  const float after = z_mse();
  EXPECT_LT(after, before);
}

TEST_F(RegressionTest, ReconstructShapesAndCache) {
  RegressionEstimator reg(*ae_, *unet_cfg_, 9);
  reg.train_or_load(/*steps=*/5, /*image_size=*/32);
  const Image img = data::dataset_image(data::DatasetId::kKodak, 0, 32);
  auto coeffs = jpeg::forward_transform(img, 50);
  jpeg::drop_dc(coeffs);
  const Image rec = reg.reconstruct(coeffs);
  EXPECT_EQ(rec.width(), 32);
  EXPECT_EQ(rec.height(), 32);
  EXPECT_GT(metrics::psnr(img, rec), 8.0);
  // Second instance must load identical weights from the cache.
  RegressionEstimator reg2(*ae_, *unet_cfg_, 10);
  reg2.train_or_load(/*steps=*/5, /*image_size=*/32);
  const Image rec2 = reg2.reconstruct(coeffs);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < rec.plane(c).size(); ++i) {
      ASSERT_FLOAT_EQ(rec2.plane(c)[i], rec.plane(c)[i]);
    }
  }
}

}  // namespace
}  // namespace dcdiff::core
