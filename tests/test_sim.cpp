#include "sim/device.h"

#include <gtest/gtest.h>

#include "data/datasets.h"

namespace dcdiff::sim {
namespace {

TEST(DeviceProfiles, OrderedBySpeed) {
  EXPECT_GT(raspberry_pi4().device_mops, cortex_a53().device_mops);
  EXPECT_GT(cortex_a53().device_mops, 0.0);
}

TEST(Calibration, HostRatePositive) {
  const double mops = calibrate_host_mops();
  EXPECT_GT(mops, 10.0);  // any real CPU is far above 10 Mops/s
}

TEST(Throughput, MeasuresAndProjects) {
  std::vector<Image> images;
  for (int i = 0; i < 2; ++i) {
    images.push_back(data::dataset_image(data::DatasetId::kKodak, i, 64));
  }
  const double host_mops = 1000.0;  // fixed for test determinism
  const auto r = measure_encoder_throughput(images, false, 50,
                                            raspberry_pi4(), host_mops, 1);
  EXPECT_GT(r.host_gbps, 0.0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.input_bits, 2ull * 64 * 64 * 24);
  EXPECT_NEAR(r.device_gbps,
              r.host_gbps * raspberry_pi4().device_mops / host_mops, 1e-9);
}

TEST(Throughput, DcDropDoesNotSlowTheEncoder) {
  // Table IV's relation: the DCDiff sender is at least as fast as standard
  // JPEG (it entropy-codes fewer symbols). Allow generous tolerance for
  // timer noise on shared machines.
  std::vector<Image> images;
  for (int i = 0; i < 4; ++i) {
    images.push_back(data::dataset_image(data::DatasetId::kInria, i, 64));
  }
  const double host_mops = 1000.0;
  // Best-of-3 on each side: robust against scheduler noise on loaded or
  // shared machines (this is a relation check, not a timing benchmark).
  double standard = 0.0, dropped = 0.0;
  for (int i = 0; i < 3; ++i) {
    standard = std::max(standard,
                        measure_encoder_throughput(images, false, 50,
                                                   raspberry_pi4(),
                                                   host_mops, 2)
                            .host_gbps);
    dropped = std::max(dropped,
                       measure_encoder_throughput(images, true, 50,
                                                  raspberry_pi4(),
                                                  host_mops, 2)
                           .host_gbps);
  }
  EXPECT_GT(dropped, standard * 0.7);
}

}  // namespace
}  // namespace dcdiff::sim
