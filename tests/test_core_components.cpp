#include <gtest/gtest.h>

#include "core/autoencoder.h"
#include "core/fmpp.h"
#include "core/tensor_image.h"
#include "data/datasets.h"
#include "jpeg/codec.h"
#include "jpeg/dcdrop.h"
#include "nn/ops.h"

namespace dcdiff::core {
namespace {

TEST(TensorImage, RgbRoundTrip) {
  const Image img = data::dataset_image(data::DatasetId::kSet5, 0, 16);
  const nn::Tensor t = rgb_to_tensor(img);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 3, 16, 16}));
  for (float v : t.value()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  const Image back = tensor_to_rgb(t);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < back.plane(c).size(); ++i) {
      EXPECT_NEAR(back.plane(c)[i], img.plane(c)[i], 1e-3f);
    }
  }
}

TEST(TensorImage, RejectsWrongColorSpace) {
  Image gray(8, 8, ColorSpace::kGray);
  EXPECT_THROW(rgb_to_tensor(gray), std::invalid_argument);
  EXPECT_THROW(tensor_to_rgb(nn::Tensor::zeros({1, 1, 8, 8})),
               std::invalid_argument);
  EXPECT_THROW(tensor_to_rgb(nn::Tensor::zeros({2, 3, 8, 8})),
               std::invalid_argument);
}

TEST(TensorImage, TildeScaling) {
  const Image img = data::dataset_image(data::DatasetId::kKodak, 0, 16);
  jpeg::CoeffImage ci = jpeg::forward_transform(img, 50);
  jpeg::drop_dc(ci);
  const Image tilde = jpeg::tilde_image(ci);
  const nn::Tensor t = tilde_to_tensor(tilde);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 3, 16, 16}));
  EXPECT_NEAR(t.value()[5], tilde.plane(0)[5] / 128.0f, 1e-6f);
}

TEST(TensorImage, StackAndTakeSample) {
  const nn::Tensor a = nn::Tensor::full({1, 2, 2, 2}, 1.0f);
  const nn::Tensor b = nn::Tensor::full({1, 2, 2, 2}, 2.0f);
  const nn::Tensor batch = stack_batch({a, b});
  EXPECT_EQ(batch.shape(), (std::vector<int>{2, 2, 2, 2}));
  const nn::Tensor s1 = take_sample(batch, 1);
  EXPECT_EQ(s1.dim(0), 1);
  EXPECT_FLOAT_EQ(s1.value()[0], 2.0f);
  EXPECT_THROW(take_sample(batch, 2), std::out_of_range);
  EXPECT_THROW(stack_batch({}), std::invalid_argument);
  EXPECT_THROW(stack_batch({a, nn::Tensor::zeros({1, 3, 2, 2})}),
               std::invalid_argument);
}

class AutoencoderTest : public ::testing::Test {
 protected:
  AutoencoderTest() : ae_(AutoencoderConfig{4, 8, 8}, 3) {}
  Autoencoder ae_;
};

TEST_F(AutoencoderTest, LatentShapesAreQuarterResolution) {
  const nn::Tensor x = nn::Tensor::zeros({2, 3, 32, 32});
  const nn::Tensor z = ae_.encode_dc(x);
  EXPECT_EQ(z.shape(), (std::vector<int>{2, 4, 8, 8}));
  const ACFeatures ac = ae_.encode_ac(x);
  EXPECT_EQ(ac.quarter.shape(), (std::vector<int>{2, 8, 8, 8}));
  EXPECT_EQ(ac.half.shape(), (std::vector<int>{2, 8, 16, 16}));
}

TEST_F(AutoencoderTest, LatentIsTanhBounded) {
  nn::Tensor x = nn::Tensor::full({1, 3, 16, 16}, 0.9f);
  const nn::Tensor z = ae_.encode_dc(x);
  for (float v : z.value()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST_F(AutoencoderTest, DecodeReturnsImageRange) {
  const nn::Tensor z = nn::Tensor::zeros({1, 4, 8, 8});
  ACFeatures ac;
  ac.quarter = nn::Tensor::zeros({1, 8, 8, 8});
  ac.half = nn::Tensor::zeros({1, 8, 16, 16});
  const nn::Tensor x = ae_.decode(z, ac);
  EXPECT_EQ(x.shape(), (std::vector<int>{1, 3, 32, 32}));
  for (float v : x.value()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST_F(AutoencoderTest, ParameterCountStable) {
  // Serialization depends on a stable parameter ordering/count.
  EXPECT_EQ(ae_.params().size(), Autoencoder(AutoencoderConfig{4, 8, 8}, 99)
                                     .params().size());
}

TEST_F(AutoencoderTest, GradReachesEveryParam) {
  const nn::Tensor x =
      nn::Tensor::full({1, 3, 16, 16}, 0.3f);
  nn::Tensor loss = nn::mean(ae_.decode(ae_.encode_dc(x), ae_.encode_ac(x)));
  loss.backward();
  for (auto& p : ae_.params()) {
    double g = 0;
    for (float v : p.grad()) g += std::abs(v);
    EXPECT_GT(g, 0.0);
  }
}

TEST(Discriminator, LogitMapShape) {
  PatchDiscriminator disc(5);
  const nn::Tensor logits = disc.forward(nn::Tensor::zeros({2, 3, 32, 32}));
  EXPECT_EQ(logits.shape(), (std::vector<int>{2, 1, 8, 8}));
}

TEST(Discriminator, HingeLossesBehave) {
  // Perfect discrimination (real >> 1, fake << -1) drives d-loss to zero.
  const nn::Tensor big = nn::Tensor::full({1, 1, 2, 2}, 5.0f);
  const nn::Tensor small = nn::Tensor::full({1, 1, 2, 2}, -5.0f);
  EXPECT_FLOAT_EQ(hinge_d_loss(big, small).item(), 0.0f);
  EXPECT_GT(hinge_d_loss(small, big).item(), 5.0f);
  // Generator wants d_fake large: loss is its negative mean.
  EXPECT_FLOAT_EQ(hinge_g_loss(big).item(), -5.0f);
}

TEST(Fmpp, FactorsInZeroTwoRange) {
  FMPP fmpp(9);
  const nn::Tensor tilde = nn::Tensor::full({3, 3, 32, 32}, 0.2f);
  const FMPP::Factors f = fmpp.forward(tilde);
  EXPECT_EQ(f.s.shape(), (std::vector<int>{3}));
  EXPECT_EQ(f.b.shape(), (std::vector<int>{3}));
  for (float v : f.s.value()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 2.0f);
  }
  for (float v : f.b.value()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(Fmpp, DependsOnInputContent) {
  FMPP fmpp(10);
  const nn::Tensor flat = nn::Tensor::full({1, 3, 32, 32}, 0.0f);
  std::vector<float> busy_data(3 * 32 * 32);
  Rng rng(4);
  for (float& v : busy_data) v = rng.normal(0.0f, 0.5f);
  const nn::Tensor busy =
      nn::Tensor::from_data({1, 3, 32, 32}, std::move(busy_data));
  const float s_flat = fmpp.forward(flat).s.value()[0];
  const float s_busy = fmpp.forward(busy).s.value()[0];
  EXPECT_NE(s_flat, s_busy);
}

TEST(Fmpp, GradFlowsToParams) {
  FMPP fmpp(11);
  const nn::Tensor tilde = nn::Tensor::full({1, 3, 32, 32}, 0.1f);
  const FMPP::Factors f = fmpp.forward(tilde);
  nn::Tensor loss = nn::add(nn::sum(f.s), nn::sum(f.b));
  loss.backward();
  for (auto& p : fmpp.params()) {
    double g = 0;
    for (float v : p.grad()) g += std::abs(v);
    EXPECT_GT(g, 0.0);
  }
}

}  // namespace
}  // namespace dcdiff::core
