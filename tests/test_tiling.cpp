// Tests for MCU-aligned tiled fan-out (serve/tiler.h) and tiled serving.
//
// Layout/extraction are exact, unit-testable properties: tile interiors
// partition the image on MCU boundaries, crops stay in bounds, an extracted
// tile's coefficients match the parent's. Stitching is tested two ways:
//   * Identity: stitching exact crops of a known image reproduces that image
//     (modulo the global postprocess both paths share) within 1e-4 — the
//     offset reconciliation and blend machinery must be a no-op when tiles
//     already agree.
//   * End-to-end: a 128 px image served through a 4x4 tile grid across a
//     3-worker server lands close to the comparable untiled reconstruction.
//     Exact equality is unattainable by construction — GroupNorm normalizes
//     over whole-tensor statistics and the UNet's receptive field exceeds
//     any affordable halo — so the interior/seam bounds here are calibrated
//     empirical contracts (see DESIGN.md §14), not 1e-4 equivalence.
//
// Runs under the `concurrency` CTest label (3-worker fan-out test).
#include "serve/tiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <vector>

#include "core/pipeline.h"
#include "core/postprocess.h"
#include "data/datasets.h"
#include "jpeg/codec.h"
#include "serve/server.h"

namespace dcdiff::serve {
namespace {

core::DCDiffConfig tiny_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "test_tiling_ae";
  cfg.tag = "test_tiling";
  return cfg;
}

TilePolicy test_policy() {
  TilePolicy tile;
  tile.max_tile_px = 32;
  tile.halo_px = 16;
  tile.overlap_px = 8;
  return tile;
}

class TilingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ =
        std::filesystem::temp_directory_path() / "dcdiff_tiling_test_cache";
    std::filesystem::create_directories(cache_dir_);
    setenv("DCDIFF_CACHE_DIR", cache_dir_.c_str(), 1);
    model_ = core::ModelPool::instance().get(tiny_config());
  }
  static void TearDownTestSuite() {
    model_.reset();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }

  // A 128 px image: 4x the 32 px tile side, so the policy yields a 4x4 grid.
  static Image big_image() {
    return data::dataset_image(data::DatasetId::kKodak, 0, 128);
  }

  static double max_abs_diff(const Image& a, const Image& b) {
    if (a.width() != b.width() || a.height() != b.height() ||
        a.channels() != b.channels()) {
      return 1e9;
    }
    double m = 0;
    for (int c = 0; c < a.channels(); ++c) {
      const auto& pa = a.plane(c);
      const auto& pb = b.plane(c);
      for (size_t i = 0; i < pa.size(); ++i) {
        m = std::max(m, static_cast<double>(std::fabs(pa[i] - pb[i])));
      }
    }
    return m;
  }

  static std::filesystem::path cache_dir_;
  static std::shared_ptr<const core::DCDiffModel> model_;
};

std::filesystem::path TilingTest::cache_dir_;
std::shared_ptr<const core::DCDiffModel> TilingTest::model_;

// ---- layout ----

TEST_F(TilingTest, PlanTilesUntiledWhenDisabledOrImageFits) {
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(big_image()).bytes);
  TilePolicy off;  // max_tile_px = 0
  EXPECT_FALSE(plan_tiles(coeffs, off).tiled());
  TilePolicy roomy = test_policy();
  roomy.max_tile_px = 256;  // image fits in one tile
  EXPECT_FALSE(plan_tiles(coeffs, roomy).tiled());
}

TEST_F(TilingTest, PlanTilesGridIsMcuAlignedAndCoversImage) {
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(big_image()).bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  ASSERT_TRUE(layout.tiled());
  EXPECT_EQ(layout.tiles_x, 4);
  EXPECT_EQ(layout.tiles_y, 4);
  EXPECT_EQ(layout.width, 128);
  EXPECT_EQ(layout.height, 128);
  ASSERT_EQ(layout.tiles.size(), 16u);

  // Color 4:2:0: MCU is 16 px; every interior origin must sit on it and the
  // interiors must partition the image exactly.
  const int mcu = 16;
  long long area = 0;
  for (const TileSpec& t : layout.tiles) {
    EXPECT_EQ(t.x0 % mcu, 0);
    EXPECT_EQ(t.y0 % mcu, 0);
    EXPECT_LT(t.x0, t.x1);
    EXPECT_LT(t.y0, t.y1);
    area += static_cast<long long>(t.x1 - t.x0) * (t.y1 - t.y0);
    // Crop contains the interior plus a bounded, in-bounds halo.
    EXPECT_LE(t.cx0, t.x0);
    EXPECT_LE(t.cy0, t.y0);
    EXPECT_GE(t.cx1, t.x1);
    EXPECT_GE(t.cy1, t.y1);
    EXPECT_GE(t.cx0, 0);
    EXPECT_GE(t.cy0, 0);
    EXPECT_LE(t.cx1, layout.width);
    EXPECT_LE(t.cy1, layout.height);
    EXPECT_EQ(t.cx0 % mcu, 0);  // crops are themselves MCU-aligned
    EXPECT_EQ(t.cy0 % mcu, 0);
  }
  EXPECT_EQ(area, 128ll * 128ll);  // exact partition: no gaps, no overlap
}

// ---- extraction ----

TEST_F(TilingTest, ExtractedTileDecodesToTheParentCrop) {
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(big_image()).bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  ASSERT_TRUE(layout.tiled());
  // The AC-only tilde image is a pure per-block transform of the
  // coefficients, so an extracted tile's tilde must equal the parent
  // tilde's crop exactly — blocks are copied, not re-encoded.
  const Image full_tilde = jpeg::tilde_image(coeffs);
  for (const int idx : {0, 5, 15}) {  // corner, interior, opposite corner
    const TileSpec& t = layout.tiles[static_cast<size_t>(idx)];
    const jpeg::CoeffImage tile = extract_tile(coeffs, t);
    const Image tile_tilde = jpeg::tilde_image(tile);
    ASSERT_EQ(tile_tilde.width(), t.cx1 - t.cx0);
    ASSERT_EQ(tile_tilde.height(), t.cy1 - t.cy0);
    const Image ref =
        crop(full_tilde, t.cx0, t.cy0, t.cx1 - t.cx0, t.cy1 - t.cy0);
    EXPECT_EQ(max_abs_diff(tile_tilde, ref), 0.0) << "tile " << idx;
  }
}

// ---- stitching ----

// When the tile images are exact crops of one image, reconciliation deltas
// are zero, the corner-anchor fields vanish, and the blend averages equal
// contributions: stitch must reduce to the shared global postprocess.
TEST_F(TilingTest, StitchingExactCropsIsIdentityModuloPostprocess) {
  const Image x = big_image();
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(x).bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  ASSERT_TRUE(layout.tiled());

  std::vector<Image> tiles;
  for (const TileSpec& t : layout.tiles) {
    tiles.push_back(crop(x, t.cx0, t.cy0, t.cx1 - t.cx0, t.cy1 - t.cy0));
  }
  const Image stitched = stitch_tiles(coeffs, layout, tiles);

  const Image anchored = core::anchor_to_corners(x, jpeg::tilde_image(coeffs));
  const Image expected = core::project_onto_known_ac(anchored, coeffs);
  EXPECT_LE(max_abs_diff(stitched, expected), 1e-4);
}

// ---- edge geometry ----

// An image smaller than one MCU can never split: even a policy demanding
// tiles smaller than the MCU yields the untiled layout (side is floored at
// one MCU, and a single-tile grid is not a fan-out). A slightly larger
// image may tile at a sub-16 MCU (a crop this small is not 4:2:0), but its
// interiors must still partition the image exactly.
TEST_F(TilingTest, SubMcuImageNeverTiles) {
  const Image tiny = crop(big_image(), 0, 0, 6, 7);
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(tiny).bytes);
  EXPECT_EQ(coeffs.width, 6);
  EXPECT_EQ(coeffs.height, 7);
  TilePolicy policy = test_policy();
  policy.max_tile_px = 4;  // smaller than any MCU: floored at one MCU
  const TileLayout layout = plan_tiles(coeffs, policy);
  EXPECT_FALSE(layout.tiled());
  EXPECT_EQ(layout.width, 6);
  EXPECT_EQ(layout.height, 7);

  const Image small = crop(big_image(), 0, 0, 12, 10);
  const jpeg::CoeffImage scoeffs =
      jpeg::decode_jfif(core::sender_encode(small).bytes);
  policy.max_tile_px = 8;
  const TileLayout slayout = plan_tiles(scoeffs, policy);
  long long area = 0;
  for (const TileSpec& t : slayout.tiles) {
    EXPECT_GE(t.cx0, 0);
    EXPECT_GE(t.cy0, 0);
    EXPECT_LE(t.cx1, 12);
    EXPECT_LE(t.cy1, 10);
    area += static_cast<long long>(t.x1 - t.x0) * (t.y1 - t.y0);
  }
  if (slayout.tiled()) EXPECT_EQ(area, 12ll * 10ll);
}

// A wide strip one tile tall must produce a 1xN grid whose interiors span
// the full height and partition the strip exactly — and stitching exact
// crops of it must still reduce to the shared postprocess.
TEST_F(TilingTest, StripImageYieldsOneByNGridAndStitches) {
  const Image strip = crop(big_image(), 0, 0, 128, 16);
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(strip).bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  ASSERT_TRUE(layout.tiled());
  EXPECT_EQ(layout.tiles_x, 4);
  EXPECT_EQ(layout.tiles_y, 1);
  long long area = 0;
  for (const TileSpec& t : layout.tiles) {
    EXPECT_EQ(t.y0, 0);
    EXPECT_EQ(t.y1, 16);  // full height, no vertical cuts
    EXPECT_EQ(t.cy0, 0);
    EXPECT_EQ(t.cy1, 16);  // vertical halo clamps to the strip
    area += static_cast<long long>(t.x1 - t.x0) * (t.y1 - t.y0);
  }
  EXPECT_EQ(area, 128ll * 16ll);

  std::vector<Image> tiles;
  for (const TileSpec& t : layout.tiles) {
    tiles.push_back(crop(strip, t.cx0, t.cy0, t.cx1 - t.cx0, t.cy1 - t.cy0));
  }
  const Image stitched = stitch_tiles(coeffs, layout, tiles);
  const Image anchored =
      core::anchor_to_corners(strip, jpeg::tilde_image(coeffs));
  const Image expected = core::project_onto_known_ac(anchored, coeffs);
  EXPECT_LE(max_abs_diff(stitched, expected), 1e-4);
}

// Dimensions that are neither a tile-side nor a halo multiple: the last
// row/column of tiles is ragged but still covers the image exactly, crop
// origins stay MCU-aligned, and extraction + identity stitching hold.
TEST_F(TilingTest, RaggedNonHaloMultipleDimsCoverExactly) {
  const Image odd = crop(big_image(), 0, 0, 104, 88);
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(odd).bytes);
  TilePolicy policy = test_policy();
  policy.halo_px = 12;  // not an MCU multiple: must round up to 16
  const TileLayout layout = plan_tiles(coeffs, policy);
  ASSERT_TRUE(layout.tiled());
  EXPECT_EQ(layout.tiles_x, 4);  // ceil(104 / 32)
  EXPECT_EQ(layout.tiles_y, 3);  // ceil(88 / 32)

  const int mcu = 16;
  long long area = 0;
  for (const TileSpec& t : layout.tiles) {
    EXPECT_EQ(t.x0 % mcu, 0);
    EXPECT_EQ(t.y0 % mcu, 0);
    EXPECT_EQ(t.cx0 % mcu, 0);
    EXPECT_EQ(t.cy0 % mcu, 0);
    EXPECT_LE(t.x1, 104);
    EXPECT_LE(t.y1, 88);
    EXPECT_LE(t.cx1, 104);
    EXPECT_LE(t.cy1, 88);
    // The rounded halo is visible on interior-left crops: exactly 16 px.
    if (t.x0 > 0) EXPECT_EQ(t.x0 - t.cx0, 16);
    area += static_cast<long long>(t.x1 - t.x0) * (t.y1 - t.y0);
  }
  EXPECT_EQ(area, 104ll * 88ll);  // exact cover despite ragged edges

  // Extraction at the ragged bottom-right corner matches the parent crop.
  const TileSpec& last = layout.tiles.back();
  const jpeg::CoeffImage tile = extract_tile(coeffs, last);
  const Image tile_tilde = jpeg::tilde_image(tile);
  const Image ref = crop(jpeg::tilde_image(coeffs), last.cx0, last.cy0,
                         last.cx1 - last.cx0, last.cy1 - last.cy0);
  EXPECT_EQ(max_abs_diff(tile_tilde, ref), 0.0);

  std::vector<Image> tiles;
  for (const TileSpec& t : layout.tiles) {
    tiles.push_back(crop(odd, t.cx0, t.cy0, t.cx1 - t.cx0, t.cy1 - t.cy0));
  }
  const Image stitched = stitch_tiles(coeffs, layout, tiles);
  const Image anchored =
      core::anchor_to_corners(odd, jpeg::tilde_image(coeffs));
  const Image expected = core::project_onto_known_ac(anchored, coeffs);
  EXPECT_LE(max_abs_diff(stitched, expected), 1e-4);
}

TEST_F(TilingTest, StitchRejectsMismatchedTileCount) {
  const jpeg::CoeffImage coeffs =
      jpeg::decode_jfif(core::sender_encode(big_image()).bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  std::vector<Image> tiles(3);  // wrong count
  EXPECT_THROW(stitch_tiles(coeffs, layout, tiles), std::invalid_argument);
}

// ---- served tiled reconstruction ----

// A request whose tile policy the image fits inside must take the untiled
// bit-compat path: identical (within 1e-4) to the direct reconstruction.
TEST_F(TilingTest, FittingImageServesUntiledAndMatchesDirect) {
  const auto bytes = core::sender_encode(big_image()).bytes;
  ServerConfig cfg;
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();
  ReconstructRequest req;
  req.jfif = bytes;
  req.tile = test_policy();
  req.tile.max_tile_px = 256;  // fits: single tile, no fan-out
  const Result r = session.reconstruct(req);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.outcome, Outcome::kComplete);
  EXPECT_TRUE(r.tile_workers.empty());
  const Image direct = core::receiver_reconstruct(bytes, *model_);
  EXPECT_LE(max_abs_diff(direct, r.image), 1e-4);
  EXPECT_EQ(server.stats().tiles, 0u);
}

// The fan-out acceptance test: 128 px image, 4x4 grid, 3 workers. The
// stitched result must be a valid full-size image produced by >= 2 distinct
// workers, close to the comparable untiled run (same coordinate-seeded
// noise, no FMPP) on tile interiors, with bounded error at the seams.
TEST_F(TilingTest, TiledServingFansOutAndApproximatesUntiled) {
  const Image original = big_image();
  const auto bytes = core::sender_encode(original).bytes;
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bytes);
  const TileLayout layout = plan_tiles(coeffs, test_policy());
  ASSERT_TRUE(layout.tiled());

  ServerConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 4;
  cfg.queue_capacity = 64;
  ReceiverServer server(cfg, model_);
  Session session = server.open_session();
  ReconstructRequest req;
  req.jfif = bytes;
  req.tile = test_policy();
  const Result r = session.reconstruct(req);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.outcome, Outcome::kComplete);
  ASSERT_FALSE(r.image.empty());
  EXPECT_EQ(r.image.width(), original.width());
  EXPECT_EQ(r.image.height(), original.height());

  // Fan-out: every tile ran, across at least two distinct workers.
  ASSERT_EQ(r.tile_workers.size(), layout.tiles.size());
  const std::set<int> distinct(r.tile_workers.begin(), r.tile_workers.end());
  EXPECT_GE(distinct.size(), 2u) << "tiles did not spread across workers";
  const auto stats = server.stats();
  EXPECT_EQ(stats.tiles, layout.tiles.size());
  EXPECT_EQ(stats.completed, 1u);  // one logical request

  // Untiled reference under the tile path's inference options: coordinate-
  // seeded noise at origin (0,0), FMPP off (FMPP's modulation scalars are
  // whole-image statistics, meaningless per tile).
  core::ReconstructOptions opts;
  opts.coord_noise = true;
  opts.use_fmpp = false;
  const Image reference = model_->reconstruct(coeffs, opts);

  // Split pixels into interior vs seam band (within overlap_px of an
  // interior tile boundary). GroupNorm's global statistics make exact
  // equality impossible; these are calibrated contracts on a [0,255] scale.
  std::set<int> xcuts, ycuts;
  for (const TileSpec& t : layout.tiles) {
    if (t.x0 > 0) xcuts.insert(t.x0);
    if (t.y0 > 0) ycuts.insert(t.y0);
  }
  const int ov = layout.overlap_px;
  const auto near_cut = [&](const std::set<int>& cuts, int p) {
    for (const int c : cuts) {
      if (p >= c - ov && p < c + ov) return true;
    }
    return false;
  };
  double interior_max = 0, interior_sum = 0, seam_max = 0;
  long long interior_n = 0;
  for (int c = 0; c < reference.channels(); ++c) {
    for (int y = 0; y < reference.height(); ++y) {
      for (int x = 0; x < reference.width(); ++x) {
        const double d = std::fabs(reference.at(c, y, x) - r.image.at(c, y, x));
        if (near_cut(xcuts, x) || near_cut(ycuts, y)) {
          seam_max = std::max(seam_max, d);
        } else {
          interior_max = std::max(interior_max, d);
          interior_sum += d;
          ++interior_n;
        }
      }
    }
  }
  const double interior_mean = interior_sum / static_cast<double>(interior_n);
  // Calibrated bounds (deterministic sampling: these are stable, not
  // flaky; measured ~9.7 mean on the tiny test model).
  EXPECT_LE(interior_mean, 14.0) << "tile interiors drifted from untiled";
  EXPECT_LE(interior_max, 96.0);
  EXPECT_LE(seam_max, 128.0) << "seam error unbounded";
}

}  // namespace
}  // namespace dcdiff::serve
