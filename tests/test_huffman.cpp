#include "jpeg/huffman.h"

#include <gtest/gtest.h>

#include <numeric>

#include "nn/rng.h"

namespace dcdiff::jpeg {
namespace {

const HuffSpec* spec_by_index(int i) {
  switch (i) {
    case 0: return &std_dc_luma();
    case 1: return &std_dc_chroma();
    case 2: return &std_ac_luma();
    default: return &std_ac_chroma();
  }
}

class StandardTables : public ::testing::TestWithParam<int> {};

TEST_P(StandardTables, BitsSumMatchesValueCount) {
  const HuffSpec& spec = *spec_by_index(GetParam());
  const size_t total =
      std::accumulate(spec.bits.begin(), spec.bits.end(), size_t{0});
  EXPECT_EQ(total, spec.vals.size());
}

TEST_P(StandardTables, KraftInequalityHolds) {
  const HuffSpec& spec = *spec_by_index(GetParam());
  double kraft = 0.0;
  for (int length = 1; length <= 16; ++length) {
    kraft += spec.bits[static_cast<size_t>(length - 1)] /
             std::pow(2.0, length);
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST_P(StandardTables, EncodeDecodeRoundTripAllSymbols) {
  const HuffSpec& spec = *spec_by_index(GetParam());
  const HuffEncoder enc(spec);
  const HuffDecoder dec(spec);
  BitWriter bw;
  for (uint8_t sym : spec.vals) enc.encode(bw, sym);
  const auto bytes = bw.finish();
  BitReader br(bytes.data(), bytes.size());
  for (uint8_t sym : spec.vals) {
    EXPECT_EQ(dec.decode(br), sym);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFour, StandardTables, ::testing::Range(0, 4));

TEST(Huffman, DCTableSizes) {
  EXPECT_EQ(std_dc_luma().vals.size(), 12u);
  EXPECT_EQ(std_ac_luma().vals.size(), 162u);
  EXPECT_EQ(std_ac_chroma().vals.size(), 162u);
}

TEST(Huffman, EncoderRejectsUnknownSymbol) {
  const HuffEncoder enc(std_dc_luma());
  BitWriter bw;
  EXPECT_THROW(enc.encode(bw, 0xEE), std::runtime_error);
}

TEST(Huffman, FrequentSymbolsGetShortCodes) {
  const HuffEncoder enc(std_ac_luma());
  // (run=0,size=1) is the most common AC symbol: 2 bits in Annex K.
  EXPECT_EQ(enc.code_length(0x01), 2);
  // ZRL is rarer: much longer.
  EXPECT_GE(enc.code_length(0xF0), 10);
}

TEST(OptimizedHuffman, RoundTripRandomDistribution) {
  Rng rng(4);
  std::array<uint64_t, 256> freq{};
  for (int i = 0; i < 40; ++i) {
    freq[static_cast<size_t>(rng.uniform_int(0, 255))] +=
        static_cast<uint64_t>(rng.uniform_int(1, 10000));
  }
  const HuffSpec spec = build_optimized_spec(freq);
  const HuffEncoder enc(spec);
  const HuffDecoder dec(spec);
  BitWriter bw;
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 256; ++i) {
    if (freq[static_cast<size_t>(i)] > 0) {
      symbols.push_back(static_cast<uint8_t>(i));
      enc.encode(bw, static_cast<uint8_t>(i));
    }
  }
  const auto bytes = bw.finish();
  BitReader br(bytes.data(), bytes.size());
  for (uint8_t s : symbols) EXPECT_EQ(dec.decode(br), s);
}

TEST(OptimizedHuffman, BeatsStandardOnSkewedData) {
  // A stream dominated by one symbol should compress better with an
  // optimized table than with the generic Annex-K table.
  std::array<uint64_t, 256> freq{};
  freq[0x01] = 100000;
  freq[0x02] = 10;
  freq[0x00] = 10;
  const HuffSpec opt = build_optimized_spec(freq);
  const HuffEncoder opt_enc(opt);
  const HuffEncoder std_enc(std_ac_luma());
  EXPECT_LE(opt_enc.code_length(0x01), std_enc.code_length(0x01));
  EXPECT_EQ(opt_enc.code_length(0x01), 1);
}

TEST(OptimizedHuffman, MaxCodeLengthSixteen) {
  // Exponentially-skewed frequencies force long codes; limiter must cap at 16.
  std::array<uint64_t, 256> freq{};
  uint64_t f = 1;
  for (int i = 0; i < 30; ++i) {
    freq[static_cast<size_t>(i)] = f;
    f = f * 2 + 1;
  }
  const HuffSpec spec = build_optimized_spec(freq);
  for (size_t i = 0; i < 16; ++i) {
    SUCCEED();
  }
  // All symbols present and decodable.
  const HuffEncoder enc(spec);
  for (int i = 0; i < 30; ++i) {
    EXPECT_GE(enc.code_length(static_cast<uint8_t>(i)), 1);
    EXPECT_LE(enc.code_length(static_cast<uint8_t>(i)), 16);
  }
}

TEST(OptimizedHuffman, EmptyFrequencyThrows) {
  std::array<uint64_t, 256> freq{};
  EXPECT_THROW(build_optimized_spec(freq), std::invalid_argument);
}

}  // namespace
}  // namespace dcdiff::jpeg
