// Tests for the compiled inference-plan subsystem (nn/plan/ +
// core/recon_plan.h) and its wiring into DCDiffModel::reconstruct*.
//
// The load-bearing properties:
//   * Planned execution is numerically identical to the eager tape path for
//     both reconstruct() and reconstruct_batch() (the plan's kernels clone
//     the eager loop bodies, so the target is bit-identity; the assert
//     tolerance is 1e-5).
//   * Plans compile once per shape signature and are reused (cache hits, no
//     rebuilds).
//   * DCDIFF_PLAN=0 / set_plan_enabled(0) is a real escape hatch: the plan
//     layer is never consulted.
//   * Steady state allocates nothing: after warmup, repeated planned
//     forwards grow neither the plan arena pool nor the thread workspace.
//   * Plan build failures surface as a typed Status, never an exception.
//   * Replica-sharded serving works with per-replica plans (this suite runs
//     under the `concurrency` CTest label; a TSan build exercises it).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/codec.h"
#include "nn/plan/builder.h"
#include "nn/plan/cache.h"
#include "nn/workspace.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace dcdiff {
namespace {

core::DCDiffConfig tiny_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "test_plan_ae";
  cfg.tag = "test_plan";
  return cfg;
}

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ =
        std::filesystem::temp_directory_path() / "dcdiff_plan_test_cache";
    std::filesystem::create_directories(cache_dir_);
    setenv("DCDIFF_CACHE_DIR", cache_dir_.c_str(), 1);
    model_ = core::ModelPool::instance().get(tiny_config());
  }
  static void TearDownTestSuite() {
    model_.reset();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }
  void TearDown() override { core::set_plan_enabled(-1); }

  static std::vector<uint8_t> bitstream(int idx, int size = 64) {
    const Image img = data::dataset_image(data::DatasetId::kKodak, idx, size);
    return core::sender_encode(img).bytes;
  }

  static double max_abs_diff(const Image& a, const Image& b) {
    if (a.width() != b.width() || a.height() != b.height() ||
        a.channels() != b.channels()) {
      return 1e9;
    }
    double m = 0;
    for (int c = 0; c < a.channels(); ++c) {
      const auto& pa = a.plane(c);
      const auto& pb = b.plane(c);
      for (size_t i = 0; i < pa.size(); ++i) {
        m = std::max(m, static_cast<double>(std::fabs(pa[i] - pb[i])));
      }
    }
    return m;
  }

  static std::filesystem::path cache_dir_;
  static std::shared_ptr<const core::DCDiffModel> model_;
};

std::filesystem::path PlanTest::cache_dir_;
std::shared_ptr<const core::DCDiffModel> PlanTest::model_;

// ---- numerical equivalence ----

TEST_F(PlanTest, PlannedReconstructMatchesEager) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));

  core::set_plan_enabled(0);
  const Image eager = model_->reconstruct(coeffs);

  const uint64_t fallbacks_before =
      obs::counter("plan.eager_fallbacks").value();
  core::set_plan_enabled(1);
  const Image planned = model_->reconstruct(coeffs);
  // The planned path must actually have served this (no silent fallback).
  EXPECT_EQ(obs::counter("plan.eager_fallbacks").value(), fallbacks_before);

  EXPECT_LE(max_abs_diff(eager, planned), 1e-5);

  // A second planned call reuses the compiled plan and stays identical.
  const Image planned2 = model_->reconstruct(coeffs);
  EXPECT_EQ(max_abs_diff(planned, planned2), 0.0);
}

TEST_F(PlanTest, PlannedBatchMatchesEagerAcrossMixedSizes) {
  // Two padded sizes -> two plan signatures inside one batch call.
  std::vector<jpeg::CoeffImage> coeffs;
  coeffs.push_back(jpeg::decode_jfif(bitstream(0, 64)));
  coeffs.push_back(jpeg::decode_jfif(bitstream(1, 48)));
  coeffs.push_back(jpeg::decode_jfif(bitstream(2, 64)));

  core::set_plan_enabled(0);
  const std::vector<Image> eager = model_->reconstruct_batch(coeffs);

  const uint64_t fallbacks_before =
      obs::counter("plan.eager_fallbacks").value();
  core::set_plan_enabled(1);
  const std::vector<Image> planned = model_->reconstruct_batch(coeffs);
  EXPECT_EQ(obs::counter("plan.eager_fallbacks").value(), fallbacks_before);

  ASSERT_EQ(planned.size(), eager.size());
  for (size_t i = 0; i < eager.size(); ++i) {
    EXPECT_LE(max_abs_diff(eager[i], planned[i]), 1e-5) << "image " << i;
  }
}

// ---- compile-once semantics ----

TEST_F(PlanTest, PlanCompiledOncePerSignature) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));
  core::set_plan_enabled(1);
  (void)model_->reconstruct(coeffs);  // compiles on first use (or earlier)

  const uint64_t builds_before = obs::counter("plan.builds").value();
  const uint64_t hits_before = obs::counter("plan.cache_hits").value();
  (void)model_->reconstruct(coeffs);
  (void)model_->reconstruct(coeffs);
  EXPECT_EQ(obs::counter("plan.builds").value(), builds_before);
  EXPECT_GE(obs::counter("plan.cache_hits").value(), hits_before + 2);
}

TEST_F(PlanTest, DisabledPlanPathIsNeverConsulted) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));
  core::set_plan_enabled(0);
  EXPECT_FALSE(core::plan_enabled());
  const uint64_t builds_before = obs::counter("plan.builds").value();
  const uint64_t hits_before = obs::counter("plan.cache_hits").value();
  const Image img = model_->reconstruct(coeffs);
  EXPECT_GT(img.width(), 0);
  EXPECT_EQ(obs::counter("plan.builds").value(), builds_before);
  EXPECT_EQ(obs::counter("plan.cache_hits").value(), hits_before);
  core::set_plan_enabled(-1);  // back to the env default
  EXPECT_TRUE(core::plan_enabled());
}

// ---- steady-state allocation behaviour ----

TEST_F(PlanTest, SteadyStatePlannedForwardAllocatesNothing) {
  const jpeg::CoeffImage coeffs = jpeg::decode_jfif(bitstream(0));
  core::set_plan_enabled(1);
  // Warm up: plan compile, arena-pool seeding, workspace growth.
  (void)model_->reconstruct(coeffs);
  (void)model_->reconstruct(coeffs);

  const uint64_t arena_allocs_before =
      obs::counter("plan.arena_allocs").value();
  const size_t ws_blocks_before = nn::Workspace::total_blocks_allocated();
  for (int i = 0; i < 3; ++i) {
    (void)model_->reconstruct(coeffs);
    EXPECT_EQ(obs::gauge("plan.allocs_per_forward").value(), 0.0);
  }
  EXPECT_EQ(obs::counter("plan.arena_allocs").value(), arena_allocs_before);
  EXPECT_EQ(nn::Workspace::total_blocks_allocated(), ws_blocks_before);
  EXPECT_GT(obs::gauge("plan.arena_bytes").value(), 0.0);
}

// ---- typed build failures ----

TEST(PlanCacheTest, BuildFailureSurfacesAsStatus) {
  nn::plan::PlanCache cache;
  std::shared_ptr<const nn::plan::Plan> plan;

  // A capture that throws (unsupported op) becomes invalid_argument.
  const Status bad = cache.get_or_build(
      "bad",
      [](nn::plan::GraphBuilder&) {
        throw std::invalid_argument("unsupported op");
      },
      nullptr, &plan);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0u);

  // A capture that marks no output is a malformed graph, same code.
  const Status empty = cache.get_or_build(
      "empty", [](nn::plan::GraphBuilder& g) { (void)g.input({1, 4}); },
      nullptr, &plan);
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);

  // A well-formed graph compiles and runs the same math as eager.
  const Status ok = cache.get_or_build(
      "ok",
      [](nn::plan::GraphBuilder& g) { g.mark_output(g.silu(g.input({1, 4}))); },
      nullptr, &plan);
  ASSERT_TRUE(ok.is_ok()) << ok.to_string();
  EXPECT_EQ(cache.size(), 1u);
  auto lease = cache.arena_for(*plan);
  const float in[4] = {-1.0f, 0.0f, 0.5f, 2.0f};
  std::vector<const float*> outs;
  plan->run(lease.arena(), {in}, &outs);
  ASSERT_EQ(outs.size(), 1u);
  for (int i = 0; i < 4; ++i) {
    const float want = in[i] / (1.0f + std::exp(-in[i]));
    EXPECT_EQ(outs[0][i], want) << "lane " << i;
  }
}

// ---- replica-sharded serving through per-replica plans ----

TEST_F(PlanTest, ShardedServerMatchesSingleWorkerWithPlans) {
  core::set_plan_enabled(1);
  constexpr int kImages = 4;
  std::vector<std::vector<uint8_t>> streams;
  for (int i = 0; i < kImages; ++i) streams.push_back(bitstream(i));

  serve::ServerConfig scfg;
  scfg.max_batch = 2;
  scfg.queue_capacity = 64;

  const uint64_t fallbacks_before =
      obs::counter("plan.eager_fallbacks").value();

  std::vector<Image> reference(kImages);
  {
    scfg.workers = 1;
    serve::ReceiverServer server(scfg, model_);
    serve::Session session = server.open_session();
    for (int i = 0; i < kImages; ++i) {
      serve::ReconstructRequest req;
      req.jfif = streams[static_cast<size_t>(i)];
      serve::Result r = session.reconstruct(req);
      ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
      reference[static_cast<size_t>(i)] = std::move(r.image);
    }
  }
  {
    scfg.workers = 3;
    serve::ReceiverServer server(scfg, model_);
    serve::Session session = server.open_session();
    std::vector<std::future<serve::Result>> futs;
    for (const auto& bytes : streams) {
      serve::ReconstructRequest req;
      req.jfif = bytes;
      futs.push_back(session.submit_future(req));
    }
    for (int i = 0; i < kImages; ++i) {
      serve::Result r = futs[static_cast<size_t>(i)].get();
      ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
      // Worker batching may group requests differently than the reference
      // pass, so this matches at the (tested) batch-vs-single tolerance.
      EXPECT_LE(max_abs_diff(reference[static_cast<size_t>(i)], r.image),
                1e-4)
          << "image " << i;
    }
  }
  // Every request on both servers went through the planned path.
  EXPECT_EQ(obs::counter("plan.eager_fallbacks").value(), fallbacks_before);
}

}  // namespace
}  // namespace dcdiff
