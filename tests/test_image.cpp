#include "image/image.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/rng.h"

namespace dcdiff {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(16, 8, ColorSpace::kRGB, 3.0f);
  EXPECT_EQ(img.width(), 16);
  EXPECT_EQ(img.height(), 8);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.sample_count(), 16u * 8u * 3u);
  EXPECT_FLOAT_EQ(img.at(2, 7, 15), 3.0f);
}

TEST(Image, InvalidDimensionsThrow) {
  EXPECT_THROW(Image(0, 4, ColorSpace::kGray), std::invalid_argument);
  EXPECT_THROW(Image(4, -1, ColorSpace::kGray), std::invalid_argument);
}

TEST(Image, ClampedAccessReplicatesEdges) {
  Image img(4, 4, ColorSpace::kGray);
  img.at(0, 0, 0) = 7.0f;
  img.at(0, 3, 3) = 9.0f;
  EXPECT_FLOAT_EQ(img.at_clamped(0, -5, -5), 7.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(0, 10, 10), 9.0f);
}

TEST(Image, ClampLimitsRange) {
  Image img(2, 2, ColorSpace::kGray);
  img.at(0, 0, 0) = -50.0f;
  img.at(0, 1, 1) = 300.0f;
  img.clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(0, 1, 1), 255.0f);
}

TEST(Image, SetColorSpaceRequiresMatchingChannels) {
  Image rgb(4, 4, ColorSpace::kRGB);
  EXPECT_NO_THROW(rgb.set_color_space(ColorSpace::kYCbCr));
  EXPECT_THROW(rgb.set_color_space(ColorSpace::kGray),
               std::invalid_argument);
}

TEST(ColorConversion, GrayRGBMapsToLumaOnly) {
  Image rgb(2, 2, ColorSpace::kRGB, 100.0f);
  Image ycc = rgb_to_ycbcr(rgb);
  EXPECT_NEAR(ycc.at(0, 0, 0), 100.0f, 1e-3);
  EXPECT_NEAR(ycc.at(1, 0, 0), 128.0f, 1e-3);
  EXPECT_NEAR(ycc.at(2, 0, 0), 128.0f, 1e-3);
}

TEST(ColorConversion, RoundTripIsNearlyLossless) {
  Rng rng(1);
  Image rgb(16, 16, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& v : rgb.plane(c)) v = rng.uniform(0.0f, 255.0f);
  }
  const Image back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        EXPECT_NEAR(back.at(c, y, x), rgb.at(c, y, x), 0.51f);
      }
    }
  }
}

TEST(ColorConversion, WrongSpaceThrows) {
  Image gray(4, 4, ColorSpace::kGray);
  EXPECT_THROW(rgb_to_ycbcr(gray), std::invalid_argument);
  Image rgb(4, 4, ColorSpace::kRGB);
  EXPECT_THROW(ycbcr_to_rgb(rgb), std::invalid_argument);
}

TEST(Geometry, CropExtractsExactRegion) {
  Image img(8, 8, ColorSpace::kGray);
  img.at(0, 2, 3) = 42.0f;
  const Image c = crop(img, 3, 2, 2, 2);
  EXPECT_EQ(c.width(), 2);
  EXPECT_EQ(c.height(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0), 42.0f);
}

TEST(Geometry, CropOutOfBoundsThrows) {
  Image img(8, 8, ColorSpace::kGray);
  EXPECT_THROW(crop(img, 4, 4, 8, 8), std::out_of_range);
}

TEST(Geometry, PadToMultipleReplicatesEdge) {
  Image img(5, 3, ColorSpace::kGray);
  img.at(0, 2, 4) = 11.0f;
  const Image p = pad_to_multiple(img, 8);
  EXPECT_EQ(p.width(), 8);
  EXPECT_EQ(p.height(), 8);
  EXPECT_FLOAT_EQ(p.at(0, 7, 7), 11.0f);
}

TEST(Geometry, PadNoOpWhenAligned) {
  Image img(8, 8, ColorSpace::kGray, 5.0f);
  const Image p = pad_to_multiple(img, 8);
  EXPECT_EQ(p.width(), 8);
  EXPECT_EQ(p.height(), 8);
}

TEST(Geometry, DownscaleAveragesBoxes) {
  Image img(4, 4, ColorSpace::kGray);
  img.at(0, 0, 0) = 4.0f;
  img.at(0, 0, 1) = 8.0f;
  img.at(0, 1, 0) = 12.0f;
  img.at(0, 1, 1) = 16.0f;
  const Image d = downscale2x(img);
  EXPECT_EQ(d.width(), 2);
  EXPECT_FLOAT_EQ(d.at(0, 0, 0), 10.0f);
}

TEST(Geometry, UpscaleNearestDoubles) {
  Image img(2, 2, ColorSpace::kGray);
  img.at(0, 0, 0) = 5.0f;
  const Image u = upscale2x(img, 4, 4);
  EXPECT_FLOAT_EQ(u.at(0, 1, 1), 5.0f);
}

TEST(PNM, RoundTripRGB) {
  Rng rng(7);
  Image rgb(9, 7, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& v : rgb.plane(c)) {
      v = static_cast<float>(rng.uniform_int(0, 255));
    }
  }
  const std::string path = testing::TempDir() + "/dcdiff_test.ppm";
  write_pnm(rgb, path);
  const Image back = read_pnm(path);
  ASSERT_EQ(back.width(), 9);
  ASSERT_EQ(back.height(), 7);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < back.plane(c).size(); ++i) {
      EXPECT_FLOAT_EQ(back.plane(c)[i], rgb.plane(c)[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(PNM, RoundTripGray) {
  Image gray(5, 5, ColorSpace::kGray, 77.0f);
  const std::string path = testing::TempDir() + "/dcdiff_test.pgm";
  write_pnm(gray, path);
  const Image back = read_pnm(path);
  EXPECT_EQ(back.channels(), 1);
  EXPECT_FLOAT_EQ(back.at(0, 2, 2), 77.0f);
  std::remove(path.c_str());
}

TEST(PNM, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/nonexistent/nowhere.ppm"), std::runtime_error);
}

}  // namespace
}  // namespace dcdiff
