// Tests for the context-mixing entropy coder (src/codec) and its JFIF
// integration: range coder symmetry, cm stream round trips across chroma
// formats, auto-detection, corruption rejection, and the rate advantage
// over the Annex-K Huffman baseline.
#include "codec/crc32.h"
#include "codec/dctmodel.h"
#include "codec/predictor.h"
#include "codec/rangecoder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "data/datasets.h"
#include "jpeg/codec.h"
#include "jpeg/dcdrop.h"
#include "jpeg/progressive.h"
#include "support/status.h"

namespace dcdiff {
namespace {

Image test_image(int size = 64) {
  return data::dataset_image(data::DatasetId::kKodak, 0, size);
}

// ----- Range coder -----

TEST(RangeCoder, RoundTripsRandomBitsAtRandomProbabilities) {
  std::mt19937 rng(7);
  std::vector<int> bits;
  std::vector<int> probs;
  for (int i = 0; i < 20000; ++i) {
    const int p = 1 + static_cast<int>(rng() % 4095);
    probs.push_back(p);
    bits.push_back(static_cast<int>(rng() % 4096) < p ? 1 : 0);
  }
  codec::RangeEncoder enc;
  for (size_t i = 0; i < bits.size(); ++i) {
    enc.encode(bits[i], static_cast<uint16_t>(probs[i]));
  }
  const std::vector<uint8_t> data = enc.finish();
  codec::RangeDecoder dec(data.data(), data.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(dec.decode(static_cast<uint16_t>(probs[i])), bits[i])
        << "bit " << i;
  }
}

TEST(RangeCoder, SkewedStreamsCompress) {
  // 10000 zero bits coded at p(1)=1/4096 must cost far less than a byte
  // per bit -- the basic sanity check that the arithmetic coder is really
  // fractional-bit.
  codec::RangeEncoder enc;
  for (int i = 0; i < 10000; ++i) enc.encode(0, 1);
  const auto data = enc.finish();
  EXPECT_LT(data.size(), 64u);
  codec::RangeDecoder dec(data.data(), data.size());
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(dec.decode(1), 0);
}

TEST(Predictor, SquashStretchInverses) {
  for (int p = 1; p < 4096; p += 17) {
    const int s = codec::stretch(p);
    EXPECT_NEAR(codec::squash(s), p, 32) << "p=" << p;
  }
}

TEST(Predictor, StateMapLearnsBias) {
  codec::StateMap sm(1);
  for (int i = 0; i < 200; ++i) {
    sm.predict(0);
    sm.update(1);
  }
  EXPECT_GT(sm.predict(0), 3500);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC-32 ("123456789") == 0xCBF43926 (the canonical check value).
  const uint8_t msg[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(codec::crc32(msg, 9), 0xCBF43926u);
}

// ----- JFIF cm streams -----

using jpeg::ChromaFormat;
using jpeg::CoeffImage;
using jpeg::EntropyKind;

void expect_identical(const CoeffImage& a, const CoeffImage& b) {
  ASSERT_EQ(a.comps.size(), b.comps.size());
  for (size_t c = 0; c < a.comps.size(); ++c) {
    ASSERT_EQ(a.comps[c].blocks_w, b.comps[c].blocks_w);
    ASSERT_EQ(a.comps[c].blocks_h, b.comps[c].blocks_h);
    ASSERT_EQ(a.comps[c].blocks.size(), b.comps[c].blocks.size());
    for (size_t i = 0; i < a.comps[c].blocks.size(); ++i) {
      for (int k = 0; k < jpeg::kBlockSamples; ++k) {
        ASSERT_EQ(a.comps[c].blocks[i][k], b.comps[c].blocks[i][k])
            << "comp " << c << " block " << i << " k " << k;
      }
    }
  }
}

TEST(CmCodec, RoundTripsCoefficients444) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  EXPECT_EQ(jpeg::detect_entropy_kind(bytes), EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_jfif(bytes);
  expect_identical(ci, back);
}

TEST(CmCodec, RoundTripsCoefficients420) {
  const CoeffImage ci =
      jpeg::forward_transform(test_image(64), 50, ChromaFormat::k420);
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_jfif(bytes);
  expect_identical(ci, back);
  EXPECT_EQ(back.format, ChromaFormat::k420);
}

TEST(CmCodec, RoundTripsGray) {
  const CoeffImage ci = jpeg::forward_transform(to_gray(test_image(48)), 60);
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_jfif(bytes);
  expect_identical(ci, back);
}

TEST(CmCodec, RoundTripsDcDroppedStream) {
  // The paper's sender path: DC coefficients zeroed, AC-only stream. The cm
  // coder must carry it losslessly like any other coefficient field.
  CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  jpeg::drop_dc(ci);
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_jfif(bytes);
  expect_identical(ci, back);
}

TEST(CmCodec, HuffmanFilesDetectAsHuffman) {
  const CoeffImage ci = jpeg::forward_transform(test_image(32), 50);
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kHuffman);
  EXPECT_EQ(jpeg::detect_entropy_kind(bytes), EntropyKind::kHuffman);
  EXPECT_EQ(jpeg::detect_entropy_kind({}), EntropyKind::kHuffman);
}

TEST(CmCodec, TruncatedPayloadIsRejectedAsStatus) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  bytes.resize(bytes.size() - bytes.size() / 4);
  CoeffImage out;
  const Status st = jpeg::try_decode_jfif(bytes, &out);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(CmCodec, CorruptedPayloadFailsCrc) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  bytes[bytes.size() - 8] ^= 0x40;  // flip a bit inside the cm payload
  CoeffImage out;
  const Status st = jpeg::try_decode_jfif(bytes, &out);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.message();
}

TEST(CmCodec, RestartIntervalSurvivesCmContainer) {
  CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  ci.restart_interval = 4;
  const auto bytes = jpeg::encode_jfif(ci, EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_jfif(bytes);
  EXPECT_EQ(back.restart_interval, 4);
}

// ----- Progressive (SOF2) cm streams -----

TEST(CmProgressive, RoundTripsCoefficients) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  const auto bytes = jpeg::encode_progressive(ci, jpeg::ProgressiveConfig(),
                                              EntropyKind::kCm);
  EXPECT_TRUE(jpeg::is_progressive(bytes));
  EXPECT_EQ(jpeg::detect_entropy_kind(bytes), EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_progressive(bytes);
  expect_identical(ci, back);
}

TEST(CmProgressive, RoundTrips420) {
  const CoeffImage ci =
      jpeg::forward_transform(test_image(64), 50, ChromaFormat::k420);
  const auto bytes = jpeg::encode_progressive(ci, jpeg::ProgressiveConfig(),
                                              EntropyKind::kCm);
  const CoeffImage back = jpeg::decode_progressive(bytes);
  expect_identical(ci, back);
}

TEST(CmProgressive, PreviewDecodesDcScanOnly) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  const auto bytes = jpeg::encode_progressive(ci, jpeg::ProgressiveConfig(),
                                              EntropyKind::kCm);
  const CoeffImage prev = jpeg::decode_progressive_preview(bytes);
  ASSERT_EQ(prev.comps.size(), ci.comps.size());
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    for (size_t i = 0; i < ci.comps[c].blocks.size(); ++i) {
      ASSERT_EQ(prev.comps[c].blocks[i][0], ci.comps[c].blocks[i][0]);
      for (int k = 1; k < jpeg::kBlockSamples; ++k) {
        ASSERT_EQ(prev.comps[c].blocks[i][jpeg::zigzag_order()[k]], 0);
      }
    }
  }
}

TEST(CmProgressive, TruncatedScanIsRejectedAsStatus) {
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  auto bytes = jpeg::encode_progressive(ci, jpeg::ProgressiveConfig(),
                                        EntropyKind::kCm);
  bytes.resize(bytes.size() / 2);
  CoeffImage out;
  const Status st = jpeg::try_decode_progressive(bytes, &out);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(CmCodec, BeatsHuffmanOnEntropyBits) {
  // The reason the subsystem exists: adaptive context mixing must spend
  // fewer scan bits than the fixed Annex-K tables on real image content.
  const CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  const size_t huff = jpeg::entropy_bit_count(ci);
  const size_t cm = jpeg::entropy_bit_count_cm(ci);
  EXPECT_LT(cm, huff);
}

}  // namespace
}  // namespace dcdiff
