// Central-difference gradient verification for autograd ops.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/tensor.h"

namespace dcdiff::testing_util {

// Checks d(loss)/d(input) for every element of `input` against central
// differences. `loss_fn` must rebuild the graph from current tensor values
// and return a scalar tensor.
inline void check_gradient(nn::Tensor input,
                           const std::function<nn::Tensor()>& loss_fn,
                           float eps = 1e-3f, float tol = 2e-2f) {
  input.set_requires_grad(true);
  nn::Tensor loss = loss_fn();
  input.zero_grad();
  loss.backward();
  const std::vector<float> analytic = input.grad();
  for (size_t i = 0; i < input.numel(); ++i) {
    const float orig = input.value()[i];
    input.value()[i] = orig + eps;
    const float plus = loss_fn().item();
    input.value()[i] = orig - eps;
    const float minus = loss_fn().item();
    input.value()[i] = orig;
    const float numeric = (plus - minus) / (2.0f * eps);
    const float scale =
        std::max({1.0f, std::abs(numeric), std::abs(analytic[i])});
    EXPECT_NEAR(analytic[i], numeric, tol * scale)
        << "element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

}  // namespace dcdiff::testing_util
