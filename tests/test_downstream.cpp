#include "downstream/classifier.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "data/datasets.h"
#include "jpeg/codec.h"

namespace dcdiff::downstream {
namespace {

class DownstreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto dir =
        std::filesystem::temp_directory_path() / "dcdiff_test_cache_ds";
    std::filesystem::create_directories(dir);
    setenv("DCDIFF_CACHE_DIR", dir.c_str(), 1);
  }
};

TEST_F(DownstreamTest, ForwardShape) {
  RSClassifier clf(1);
  const nn::Tensor logits = clf.forward(nn::Tensor::zeros({2, 3, 32, 32}));
  EXPECT_EQ(logits.shape(),
            (std::vector<int>{2, data::kRemoteSensingClasses}));
}

TEST_F(DownstreamTest, PredictReturnsValidClass) {
  RSClassifier clf(2);
  const int cls = clf.predict(data::remote_sensing_image(0, 32));
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, data::kRemoteSensingClasses);
}

TEST_F(DownstreamTest, ShortTrainingBeatsChance) {
  RSClassifier clf(3);
  clf.train(/*steps=*/60, /*image_size=*/32, /*seed=*/3);
  // Held-out indices far from training draws.
  const double acc = clean_accuracy(clf, 500000, 40, 32);
  EXPECT_GT(acc, 1.5 / data::kRemoteSensingClasses);
}

TEST_F(DownstreamTest, AccuracyTransformHookApplies) {
  RSClassifier clf(4);
  clf.train(40, 32, 4);
  // A transform that blanks the image collapses accuracy to chance-level.
  const double acc = clf.accuracy(500000, 40, 32, [](const Image& img) {
    return Image(img.width(), img.height(), ColorSpace::kRGB, 128.0f);
  });
  EXPECT_LE(acc, 0.6);
}

TEST_F(DownstreamTest, JpegCompressionBarelyHurtsTrainedClassifier) {
  RSClassifier clf(5);
  clf.train(60, 32, 5);
  const double clean = clean_accuracy(clf, 600000, 40, 32);
  const double compressed =
      clf.accuracy(600000, 40, 32, [](const Image& img) {
        return jpeg::jpeg_roundtrip(img, 50);
      });
  EXPECT_GE(compressed, clean - 0.25);
}

}  // namespace
}  // namespace dcdiff::downstream
