// Tests for the deterministic fault-injection harness (src/testing) and the
// codec-layer fault sites.
//
// Two populations of tests:
//   * FaultPlan / trigger / log unit tests run in every build — the plan
//     machinery itself is not gated by DCDIFF_FAULT_INJECTION, only the
//     macro-guarded sites in production code are.
//   * Corruption-at-encode sweeps (bit flips, truncation, CRC damage) need
//     the sites compiled in; they GTEST_SKIP in ordinary builds.
//
// The corruption invariant under test: whatever a fault does to the bytes
// between encode and decode, try_decode_jfif returns — either ok or a typed
// Status. Never a crash, never UB (the sanitize preset runs this suite),
// and a corrupted cm CRC is always a typed rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "jpeg/codec.h"
#include "support/status.h"
#include "testing/fault.h"

namespace dcdiff {
namespace {

Image test_image(int size = 64) {
  return data::dataset_image(data::DatasetId::kKodak, 0, size);
}

class FaultRegistry : public ::testing::Test {
 protected:
  void TearDown() override { dcdiff::testing::clear_plan(); }
};

// ----- FaultPlan grammar -----

TEST_F(FaultRegistry, ParsesFullGrammarAndRoundTrips) {
  dcdiff::testing::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(dcdiff::testing::FaultPlan::parse(
      "seed=42; serve.worker.stall=p0.25@12.5 ;codec.crc.corrupt=n3;"
      "nn.plan.arena_fail=c2@0.5",
      &plan, &err))
      << err;
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.sites.size(), 3u);
  const auto* stall = plan.find("serve.worker.stall");
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->mode, dcdiff::testing::SiteSpec::Mode::kProbability);
  EXPECT_DOUBLE_EQ(stall->probability, 0.25);
  EXPECT_DOUBLE_EQ(stall->param, 12.5);
  const auto* crc = plan.find("codec.crc.corrupt");
  ASSERT_NE(crc, nullptr);
  EXPECT_EQ(crc->mode, dcdiff::testing::SiteSpec::Mode::kNth);
  EXPECT_EQ(crc->n, 3u);
  const auto* arena = plan.find("nn.plan.arena_fail");
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->mode, dcdiff::testing::SiteSpec::Mode::kFirst);
  EXPECT_EQ(arena->n, 2u);
  EXPECT_DOUBLE_EQ(arena->param, 0.5);

  // str() -> parse() is the identity on the structure.
  dcdiff::testing::FaultPlan again;
  ASSERT_TRUE(dcdiff::testing::FaultPlan::parse(plan.str(), &again, &err))
      << err;
  EXPECT_EQ(again.str(), plan.str());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_EQ(again.sites.size(), plan.sites.size());
}

TEST_F(FaultRegistry, RejectsMalformedPlans) {
  dcdiff::testing::FaultPlan plan;
  std::string err;
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("seed=abc", &plan, &err));
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("a.b=x3", &plan, &err));
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("a.b=p1.5", &plan, &err));
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("a.b=n0", &plan, &err));
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("a.b=", &plan, &err));
  EXPECT_FALSE(dcdiff::testing::FaultPlan::parse("a.b=p0.5@zz", &plan, &err));
  EXPECT_FALSE(err.empty());
}

// ----- trigger semantics -----

TEST_F(FaultRegistry, NthFiresExactlyOnce) {
  dcdiff::testing::FaultPlan plan;
  plan.seed = 1;
  dcdiff::testing::SiteSpec spec;
  spec.mode = dcdiff::testing::SiteSpec::Mode::kNth;
  spec.n = 3;
  plan.set("t.site", spec);
  dcdiff::testing::install_plan(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(dcdiff::testing::fault_point("t.site"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(dcdiff::testing::fault_hits("t.site"), 6u);
  EXPECT_EQ(dcdiff::testing::fault_fires("t.site"), 1u);
}

TEST_F(FaultRegistry, FirstCountFiresLeadingHits) {
  dcdiff::testing::FaultPlan plan;
  dcdiff::testing::SiteSpec spec;
  spec.mode = dcdiff::testing::SiteSpec::Mode::kFirst;
  spec.n = 2;
  spec.param = 7.5;
  plan.set("t.site", spec);
  dcdiff::testing::install_plan(plan);
  double param = 0;
  EXPECT_TRUE(dcdiff::testing::fault_point("t.site", &param));
  EXPECT_DOUBLE_EQ(param, 7.5);
  EXPECT_TRUE(dcdiff::testing::fault_point("t.site"));
  EXPECT_FALSE(dcdiff::testing::fault_point("t.site"));
  EXPECT_EQ(dcdiff::testing::total_fires(), 2u);
}

TEST_F(FaultRegistry, UnconfiguredSiteAndNoPlanNeverFire) {
  EXPECT_FALSE(dcdiff::testing::fault_point("no.plan.site"));
  dcdiff::testing::FaultPlan plan;
  dcdiff::testing::SiteSpec spec;
  spec.mode = dcdiff::testing::SiteSpec::Mode::kFirst;
  spec.n = 1000;
  plan.set("other.site", spec);
  dcdiff::testing::install_plan(plan);
  EXPECT_FALSE(dcdiff::testing::fault_point("not.other.site"));
  EXPECT_EQ(dcdiff::testing::fault_fires("other.site"), 0u);
}

TEST_F(FaultRegistry, ProbabilityStreamIsSeedDeterministic) {
  const auto pattern = [](uint64_t seed) {
    dcdiff::testing::FaultPlan plan;
    plan.seed = seed;
    dcdiff::testing::SiteSpec spec;
    spec.mode = dcdiff::testing::SiteSpec::Mode::kProbability;
    spec.probability = 0.5;
    plan.set("t.coin", spec);
    dcdiff::testing::install_plan(plan);
    std::vector<bool> fires;
    for (int i = 0; i < 128; ++i) {
      fires.push_back(dcdiff::testing::fault_point("t.coin"));
    }
    return fires;
  };
  const auto a1 = pattern(42);
  const auto a2 = pattern(42);
  const auto b = pattern(43);
  EXPECT_EQ(a1, a2);  // replay: same seed, same decisions, hit by hit
  EXPECT_NE(a1, b);   // different seed, different schedule
}

TEST_F(FaultRegistry, EventLogRecordsContextAndSerializes) {
  dcdiff::testing::FaultPlan plan;
  plan.seed = 9;
  dcdiff::testing::SiteSpec spec;
  spec.mode = dcdiff::testing::SiteSpec::Mode::kFirst;
  spec.n = 2;
  spec.param = 3.0;
  plan.set("t.logged", spec);
  dcdiff::testing::install_plan(plan);
  {
    dcdiff::testing::ScopedFaultContext ctx({77, 78}, 1);
    dcdiff::testing::fault_point("t.logged");
  }
  dcdiff::testing::fault_point("t.logged");  // outside any context
  const auto events = dcdiff::testing::fault_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].site, "t.logged");
  EXPECT_EQ(events[0].hit, 1u);
  EXPECT_EQ(events[0].fire, 1u);
  EXPECT_EQ(events[0].request_id, 77u);
  EXPECT_EQ(events[0].worker, 1);
  EXPECT_DOUBLE_EQ(events[0].param, 3.0);
  EXPECT_EQ(events[1].request_id, 0u);
  EXPECT_EQ(events[1].worker, -1);
  const std::string json = dcdiff::testing::fault_log_json();
  EXPECT_NE(json.find("\"site\":\"t.logged\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":77"), std::string::npos);
  EXPECT_NE(json.find(plan.str()), std::string::npos);
}

TEST_F(FaultRegistry, FaultRandIsDeterministicPerSeed) {
  const auto draws = [](uint64_t seed) {
    dcdiff::testing::FaultPlan plan;
    plan.seed = seed;
    dcdiff::testing::SiteSpec spec;
    spec.mode = dcdiff::testing::SiteSpec::Mode::kFirst;
    spec.n = 1;
    plan.set("t.rand", spec);
    dcdiff::testing::install_plan(plan);
    std::vector<uint64_t> out;
    for (int i = 0; i < 16; ++i) {
      out.push_back(dcdiff::testing::fault_rand("t.rand", 1000));
    }
    return out;
  };
  EXPECT_EQ(draws(5), draws(5));
  EXPECT_NE(draws(5), draws(6));
}

// ----- codec-layer sites (need the sites compiled in) -----

class FaultCodec : public ::testing::Test {
 protected:
  void SetUp() override {
#if !defined(DCDIFF_FAULT_INJECTION)
    GTEST_SKIP() << "built without DCDIFF_FAULT_INJECTION";
#endif
  }
  void TearDown() override { dcdiff::testing::clear_plan(); }

  static void install_every_encode(const std::string& site, uint64_t seed,
                                   double param = 0.0) {
    dcdiff::testing::FaultPlan plan;
    plan.seed = seed;
    dcdiff::testing::SiteSpec spec;
    spec.mode = dcdiff::testing::SiteSpec::Mode::kFirst;
    spec.n = 1u << 20;
    spec.param = param;
    plan.set(site, spec);
    dcdiff::testing::install_plan(plan);
  }
};

TEST_F(FaultCodec, CorruptCmCrcIsAlwaysTypedRejection) {
  const jpeg::CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  install_every_encode("codec.crc.corrupt", 7);
  const auto bytes = jpeg::encode_jfif(ci, jpeg::EntropyKind::kCm);
  EXPECT_GE(dcdiff::testing::fault_fires("codec.crc.corrupt"), 1u);
  dcdiff::testing::clear_plan();  // corruption already baked into bytes
  jpeg::CoeffImage out;
  const Status st = jpeg::try_decode_jfif(bytes, &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.to_string().find("CRC"), std::string::npos) << st.to_string();
}

TEST_F(FaultCodec, BitflipSweepNeverCrashesDecode) {
  const jpeg::CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  for (const jpeg::EntropyKind kind :
       {jpeg::EntropyKind::kHuffman, jpeg::EntropyKind::kCm}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      install_every_encode("codec.encode.bitflip", seed);
      const auto bytes = jpeg::encode_jfif(ci, kind);
      ASSERT_GE(dcdiff::testing::fault_fires("codec.encode.bitflip"), 1u);
      dcdiff::testing::clear_plan();
      jpeg::CoeffImage out;
      // The invariant is typed-or-ok: a single flipped bit may still decode
      // (Huffman streams are not self-checking) but must never crash, hang,
      // or trip the sanitizers.
      const Status st = jpeg::try_decode_jfif(bytes, &out);
      if (st.is_ok()) {
        EXPECT_EQ(out.width, ci.width);
        EXPECT_EQ(out.height, ci.height);
      } else {
        EXPECT_FALSE(st.to_string().empty());
      }
    }
  }
}

TEST_F(FaultCodec, TruncationSweepNeverCrashesDecode) {
  const jpeg::CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  for (const jpeg::EntropyKind kind :
       {jpeg::EntropyKind::kHuffman, jpeg::EntropyKind::kCm}) {
    for (const double keep : {0.1, 0.5, 0.9}) {
      install_every_encode("codec.encode.truncate", 11, keep);
      const auto full = jpeg::encode_jfif(ci, jpeg::EntropyKind::kHuffman);
      dcdiff::testing::clear_plan();
      install_every_encode("codec.encode.truncate", 11, keep);
      const auto bytes = jpeg::encode_jfif(ci, kind);
      ASSERT_GE(dcdiff::testing::fault_fires("codec.encode.truncate"), 1u);
      dcdiff::testing::clear_plan();
      EXPECT_LT(bytes.size(), full.size() + bytes.size());  // sanity
      jpeg::CoeffImage out;
      const Status st = jpeg::try_decode_jfif(bytes, &out);
      if (!st.is_ok()) EXPECT_FALSE(st.to_string().empty());
    }
  }
}

TEST_F(FaultCodec, TruncatedCmPayloadIsTypedRejection) {
  // cm framing carries an explicit payload length + CRC, so unlike Huffman
  // a truncated cm scan must always be detected.
  const jpeg::CoeffImage ci = jpeg::forward_transform(test_image(64), 50);
  install_every_encode("codec.encode.truncate", 3, 0.5);
  const auto bytes = jpeg::encode_jfif(ci, jpeg::EntropyKind::kCm);
  dcdiff::testing::clear_plan();
  jpeg::CoeffImage out;
  const Status st = jpeg::try_decode_jfif(bytes, &out);
  EXPECT_FALSE(st.is_ok());
}

}  // namespace
}  // namespace dcdiff
