#include "data/datasets.h"

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace dcdiff::data {
namespace {

class EveryDataset : public ::testing::TestWithParam<DatasetId> {};

TEST_P(EveryDataset, DeterministicGeneration) {
  const DatasetId id = GetParam();
  const Image a = dataset_image(id, 3, 64);
  const Image b = dataset_image(id, 3, 64);
  ASSERT_EQ(a.width(), 64);
  ASSERT_EQ(a.channels(), 3);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < a.plane(c).size(); ++i) {
      ASSERT_FLOAT_EQ(a.plane(c)[i], b.plane(c)[i]);
    }
  }
}

TEST_P(EveryDataset, DistinctIndicesDiffer) {
  const DatasetId id = GetParam();
  const Image a = dataset_image(id, 0, 64);
  const Image b = dataset_image(id, 1, 64);
  EXPECT_LT(metrics::psnr(a, b), 30.0);  // clearly different content
}

TEST_P(EveryDataset, PixelRangeValid) {
  const Image img = dataset_image(GetParam(), 2, 64);
  for (int c = 0; c < 3; ++c) {
    for (float v : img.plane(c)) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 255.0f);
    }
  }
}

TEST_P(EveryDataset, NaturalImageLaplacianProperty) {
  // The substitution contract: neighbour differences concentrate near zero
  // (Laplacian-like) for every dataset generator.
  const Image img = dataset_image(GetParam(), 0, 96);
  const auto hist = metrics::neighbor_diff_histogram(img);
  EXPECT_GT(hist.mass_within(8), 0.5) << dataset_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryDataset,
    ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      return std::string(dataset_name(info.param));
    });

TEST(Datasets, NamesAndCounts) {
  EXPECT_STREQ(dataset_name(DatasetId::kSet5), "Set5");
  EXPECT_EQ(dataset_full_count(DatasetId::kSet5), 5);
  EXPECT_EQ(dataset_full_count(DatasetId::kKodak), 24);
  EXPECT_EQ(dataset_full_count(DatasetId::kBSDS200), 200);
  EXPECT_EQ(dataset_full_count(DatasetId::kUrban100), 100);
  for (DatasetId id : all_datasets()) {
    EXPECT_LE(dataset_default_count(id), dataset_full_count(id));
    EXPECT_GE(dataset_default_count(id), 5);
  }
}

TEST(Datasets, UrbanHasMoreSharpEdgesThanSet5) {
  // Content statistics mirror the real sets: Urban100 (rectilinear facades)
  // has heavier neighbour-difference tails than Set5 (large smooth objects).
  double urban_tail = 0.0, set5_tail = 0.0;
  for (int i = 0; i < 4; ++i) {
    urban_tail +=
        1.0 - metrics::neighbor_diff_histogram(
                  dataset_image(DatasetId::kUrban100, i, 96)).mass_within(12);
    set5_tail +=
        1.0 - metrics::neighbor_diff_histogram(
                  dataset_image(DatasetId::kSet5, i, 96)).mass_within(12);
  }
  EXPECT_GT(urban_tail, set5_tail);
}

TEST(Datasets, MultipleSizesSupported) {
  for (int size : {32, 48, 64, 96, 128}) {
    const Image img = dataset_image(DatasetId::kBSDS200, 1, size);
    EXPECT_EQ(img.width(), size);
    EXPECT_EQ(img.height(), size);
  }
}

TEST(Datasets, SeedsIndependentAcrossDatasets) {
  // Same index in different datasets must give different images.
  const Image a = dataset_image(DatasetId::kSet5, 0, 64);
  const Image b = dataset_image(DatasetId::kSet14, 0, 64);
  EXPECT_LT(metrics::psnr(a, b), 30.0);
}

TEST(Datasets, TrainingImagesDifferFromEvalImages) {
  const Image train = training_image(2, 64);  // index 2 -> Kodak-style
  const Image eval = dataset_image(DatasetId::kKodak, 2, 64);
  EXPECT_LT(metrics::psnr(train, eval), 30.0);
}

TEST(RemoteSensing, LabelsCycleThroughClasses) {
  EXPECT_EQ(remote_sensing_label(0), 0);
  EXPECT_EQ(remote_sensing_label(5), 1);
  EXPECT_EQ(remote_sensing_label(7), 3);
}

TEST(RemoteSensing, ClassNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c < kRemoteSensingClasses; ++c) {
    names.insert(remote_sensing_class_name(c));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kRemoteSensingClasses));
}

TEST(RemoteSensing, ClassesAreVisuallyDistinct) {
  // Forest (class 1) is much more textured than water (class 0).
  const auto water =
      metrics::neighbor_diff_histogram(remote_sensing_image(0, 64));
  const auto forest =
      metrics::neighbor_diff_histogram(remote_sensing_image(1, 64));
  EXPECT_GT(forest.variance, water.variance * 2.0);
}

TEST(RemoteSensing, Deterministic) {
  const Image a = remote_sensing_image(9, 48);
  const Image b = remote_sensing_image(9, 48);
  for (size_t i = 0; i < a.plane(0).size(); ++i) {
    ASSERT_FLOAT_EQ(a.plane(0)[i], b.plane(0)[i]);
  }
}

}  // namespace
}  // namespace dcdiff::data
