#include "core/losses.h"

#include <gtest/gtest.h>

#include "grad_check.h"
#include "nn/ops.h"
#include "nn/rng.h"

namespace dcdiff::core {
namespace {

using dcdiff::testing_util::check_gradient;
using nn::Tensor;

Tensor randn(std::vector<int> shape, Rng& rng, float scale = 1.0f) {
  std::vector<float> d(nn::shape_numel(shape));
  for (float& v : d) v = rng.normal(0.0f, scale);
  return Tensor::from_data(std::move(shape), std::move(d));
}

TEST(LaplacianMask, ThresholdSelectsLowMagnitude) {
  Image tilde(4, 4, ColorSpace::kYCbCr);
  tilde.at(0, 0, 0) = 5.0f;
  tilde.at(0, 0, 1) = -5.0f;
  tilde.at(0, 1, 1) = 20.0f;
  tilde.at(0, 2, 2) = -20.0f;
  const Tensor m = laplacian_mask(tilde, 10.0f);
  EXPECT_EQ(m.shape(), (std::vector<int>{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(m.value()[0], 1.0f);   // |5| <= 10
  EXPECT_FLOAT_EQ(m.value()[1], 1.0f);   // |-5| <= 10
  EXPECT_FLOAT_EQ(m.value()[5], 0.0f);   // |20| > 10
  EXPECT_FLOAT_EQ(m.value()[10], 0.0f);  // |-20| > 10
}

TEST(LaplacianMask, ZeroThresholdMasksEverythingNonZero) {
  Image tilde(2, 2, ColorSpace::kYCbCr);
  tilde.at(0, 0, 0) = 0.0f;
  tilde.at(0, 0, 1) = 0.1f;
  const Tensor m = laplacian_mask(tilde, 0.0f);
  EXPECT_FLOAT_EQ(m.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(m.value()[1], 0.0f);
}

TEST(CornerMask, MarksFourBlocks) {
  const Tensor m = corner_mask(32, 24, 8);
  const auto& v = m.value();
  auto at = [&](int y, int x) { return v[static_cast<size_t>(y) * 24 + x]; };
  EXPECT_FLOAT_EQ(at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(at(7, 23), 1.0f);
  EXPECT_FLOAT_EQ(at(31, 0), 1.0f);
  EXPECT_FLOAT_EQ(at(31, 23), 1.0f);
  EXPECT_FLOAT_EQ(at(15, 12), 0.0f);
  double total = 0;
  for (float x : v) total += x;
  EXPECT_FLOAT_EQ(static_cast<float>(total), 4.0f * 64.0f);
}

TEST(MldLoss, ZeroForAffineImages) {
  // A plane (linear ramp) has zero second differences everywhere.
  const int h = 8, w = 8;
  std::vector<float> d(static_cast<size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      d[static_cast<size_t>(y) * w + x] = 0.3f * x - 0.2f * y + 1.0f;
    }
  }
  const Tensor xhat = Tensor::from_data({1, 1, h, w}, std::move(d));
  const Tensor mask = Tensor::full({1, 1, h, w}, 1.0f);
  EXPECT_NEAR(mld_loss(xhat, mask).item(), 0.0f, 1e-8);
}

TEST(MldLoss, PositiveForCurvedImages) {
  Rng rng(1);
  const Tensor xhat = randn({1, 1, 8, 8}, rng);
  const Tensor mask = Tensor::full({1, 1, 8, 8}, 1.0f);
  EXPECT_GT(mld_loss(xhat, mask).item(), 0.0f);
}

TEST(MldLoss, MaskedRegionsDoNotContribute) {
  Rng rng(2);
  Tensor xhat = randn({1, 1, 8, 8}, rng, 3.0f);
  const Tensor ones = Tensor::full({1, 1, 8, 8}, 1.0f);
  const Tensor zeros = Tensor::zeros({1, 1, 8, 8});
  EXPECT_GT(mld_loss(xhat, ones).item(), 0.0f);
  EXPECT_FLOAT_EQ(mld_loss(xhat, zeros).item(), 0.0f);
}

TEST(MldLoss, GradientMatchesNumeric) {
  Rng rng(3);
  Tensor xhat = randn({1, 2, 6, 6}, rng);
  Tensor mask = Tensor::full({1, 1, 6, 6}, 1.0f);
  // Punch a hole in the mask to exercise the masked branch.
  mask.value()[14] = 0.0f;
  check_gradient(xhat, [&] { return mld_loss(xhat, mask); });
}

TEST(MldLoss, BadMaskShapeThrows) {
  const Tensor x = Tensor::zeros({1, 3, 8, 8});
  EXPECT_THROW(mld_loss(x, Tensor::zeros({1, 2, 8, 8})),
               std::invalid_argument);
  EXPECT_THROW(mld_loss(x, Tensor::zeros({1, 1, 4, 4})),
               std::invalid_argument);
}

TEST(MaskedMse, RespectsMask) {
  Tensor a = Tensor::full({1, 1, 2, 2}, 1.0f);
  Tensor b = Tensor::zeros({1, 1, 2, 2});
  Tensor m = Tensor::zeros({1, 1, 2, 2});
  m.value()[0] = 1.0f;
  // Only the first element differs under the mask: mean over 1 term = 1.
  EXPECT_FLOAT_EQ(masked_mse(a, b, m).item(), 1.0f);
}

TEST(MaskedMse, GradientMatchesNumeric) {
  Rng rng(4);
  Tensor a = randn({2, 2, 4, 4}, rng);
  Tensor b = randn({2, 2, 4, 4}, rng);
  Tensor m = Tensor::zeros({2, 1, 4, 4});
  for (size_t i = 0; i < m.numel(); i += 2) m.value()[i] = 1.0f;
  check_gradient(a, [&] { return masked_mse(a, b, m); });
  check_gradient(b, [&] { return masked_mse(a, b, m); });
}

TEST(GradientL1, ZeroForShiftedImages) {
  // A constant offset has identical gradients: loss must be zero.
  Rng rng(5);
  const Tensor a = randn({1, 1, 6, 6}, rng);
  const Tensor b = nn::add_scalar(a, 5.0f);
  EXPECT_NEAR(gradient_l1_loss(a, b).item(), 0.0f, 1e-6);
}

TEST(GradientL1, DetectsStructuralDifference) {
  Rng rng(6);
  const Tensor a = randn({1, 1, 6, 6}, rng);
  const Tensor b = randn({1, 1, 6, 6}, rng);
  EXPECT_GT(gradient_l1_loss(a, b).item(), 0.0f);
}

TEST(GradientL1, GradientMatchesNumeric) {
  Rng rng(7);
  Tensor a = randn({1, 2, 5, 5}, rng);
  Tensor b = randn({1, 2, 5, 5}, rng);
  check_gradient(a, [&] { return gradient_l1_loss(a, b); }, 1e-3f, 6e-2f);
}

}  // namespace
}  // namespace dcdiff::core
