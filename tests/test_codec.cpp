#include "jpeg/codec.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "metrics/metrics.h"

namespace dcdiff::jpeg {
namespace {

Image test_image(int size = 64) {
  return data::dataset_image(data::DatasetId::kKodak, 0, size);
}

TEST(Codec, ForwardTransformShapes444) {
  const CoeffImage ci = forward_transform(test_image(64), 50);
  ASSERT_EQ(ci.comps.size(), 3u);
  EXPECT_EQ(ci.comps[0].blocks_w, 8);
  EXPECT_EQ(ci.comps[0].blocks_h, 8);
  EXPECT_EQ(ci.comps[1].blocks_w, 8);
}

TEST(Codec, ForwardTransformShapes420) {
  const CoeffImage ci =
      forward_transform(test_image(64), 50, ChromaFormat::k420);
  ASSERT_EQ(ci.comps.size(), 3u);
  EXPECT_EQ(ci.comps[0].blocks_w, 8);
  EXPECT_EQ(ci.comps[1].blocks_w, 4);
  EXPECT_EQ(ci.comps[1].blocks_h, 4);
}

TEST(Codec, GrayImagesProduceOneComponent) {
  const Image gray = to_gray(test_image(32));
  const CoeffImage ci = forward_transform(gray, 50);
  EXPECT_EQ(ci.comps.size(), 1u);
}

TEST(Codec, GrayIgnoresChromaFormatRequest) {
  // 4:2:0 only applies to chroma; grayscale must fall back to the 8x8 grid.
  const Image gray = to_gray(test_image(32));
  const CoeffImage ci = forward_transform(gray, 50, ChromaFormat::k420);
  EXPECT_EQ(ci.comps.size(), 1u);
  EXPECT_EQ(ci.comps[0].blocks_w, 4);
  const Image back = inverse_transform(ci);
  EXPECT_EQ(back.width(), 32);
}

TEST(Codec, NonMultipleDimensionsArePadded) {
  const Image img = crop(test_image(64), 0, 0, 60, 52);
  const CoeffImage ci = forward_transform(img, 50);
  EXPECT_EQ(ci.comps[0].blocks_w, 8);   // ceil(60/8)
  EXPECT_EQ(ci.comps[0].blocks_h, 7);   // ceil(52/8)
  const Image back = inverse_transform(ci);
  EXPECT_EQ(back.width(), 60);
  EXPECT_EQ(back.height(), 52);
}

class RoundTripQuality : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripQuality, PsnrIncreasesWithQuality) {
  const Image img = test_image(64);
  const int q = GetParam();
  const double p_low = metrics::psnr(img, jpeg_roundtrip(img, q));
  const double p_high = metrics::psnr(img, jpeg_roundtrip(img, q + 20));
  EXPECT_GT(p_high, p_low - 0.2) << "q=" << q;
  EXPECT_GT(p_low, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Qualities, RoundTripQuality,
                         ::testing::Values(20, 40, 50, 60, 75));

TEST(Codec, HighQualityRoundTripIsAccurate) {
  const Image img = test_image(64);
  EXPECT_GT(metrics::psnr(img, jpeg_roundtrip(img, 95)), 35.0);
}

TEST(Codec, JfifRoundTripPreservesCoefficients444) {
  const CoeffImage ci = forward_transform(test_image(64), 50);
  const auto bytes = encode_jfif(ci);
  const CoeffImage back = decode_jfif(bytes);
  ASSERT_EQ(back.comps.size(), ci.comps.size());
  EXPECT_EQ(back.width, ci.width);
  EXPECT_EQ(back.height, ci.height);
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    ASSERT_EQ(back.comps[c].blocks.size(), ci.comps[c].blocks.size());
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      for (int k = 0; k < kBlockSamples; ++k) {
        ASSERT_EQ(back.comps[c].blocks[b][k], ci.comps[c].blocks[b][k])
            << "comp " << c << " block " << b << " coef " << k;
      }
    }
  }
}

TEST(Codec, JfifRoundTripPreservesCoefficients420) {
  const CoeffImage ci =
      forward_transform(test_image(64), 50, ChromaFormat::k420);
  const CoeffImage back = decode_jfif(encode_jfif(ci));
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    for (size_t b = 0; b < ci.comps[c].blocks.size(); ++b) {
      for (int k = 0; k < kBlockSamples; ++k) {
        ASSERT_EQ(back.comps[c].blocks[b][k], ci.comps[c].blocks[b][k]);
      }
    }
  }
}

TEST(Codec, JfifRoundTripPreservesQuantTables) {
  const CoeffImage ci = forward_transform(test_image(32), 35);
  const CoeffImage back = decode_jfif(encode_jfif(ci));
  for (int i = 0; i < kBlockSamples; ++i) {
    EXPECT_EQ(back.qluma.q[i], ci.qluma.q[i]);
    EXPECT_EQ(back.qchroma.q[i], ci.qchroma.q[i]);
  }
}

TEST(Codec, JfifGrayRoundTrip) {
  const Image gray = to_gray(test_image(48));
  const CoeffImage ci = forward_transform(gray, 50);
  const CoeffImage back = decode_jfif(encode_jfif(ci));
  ASSERT_EQ(back.comps.size(), 1u);
  for (size_t b = 0; b < ci.comps[0].blocks.size(); ++b) {
    for (int k = 0; k < kBlockSamples; ++k) {
      ASSERT_EQ(back.comps[0].blocks[b][k], ci.comps[0].blocks[b][k]);
    }
  }
}

TEST(Codec, FileStartsWithSOIEndsWithEOI) {
  const auto bytes = encode_jfif(forward_transform(test_image(32), 50));
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xD8);
  EXPECT_EQ(bytes[bytes.size() - 2], 0xFF);
  EXPECT_EQ(bytes.back(), 0xD9);
}

TEST(Codec, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_jfif({0x00, 0x01, 0x02}), std::runtime_error);
}

TEST(Codec, EntropyBitCountMatchesScanSize) {
  const CoeffImage ci = forward_transform(test_image(64), 50);
  const size_t bits = entropy_bit_count(ci);
  EXPECT_GT(bits, 0u);
  // Whole file must be larger than the entropy payload alone.
  EXPECT_GT(encode_jfif(ci).size() * 8, bits);
}

TEST(Codec, LowerQualityMeansFewerBits) {
  const Image img = test_image(64);
  const size_t hi = entropy_bit_count(forward_transform(img, 85));
  const size_t lo = entropy_bit_count(forward_transform(img, 25));
  EXPECT_LT(lo, hi);
}

TEST(Codec, OptimizedTablesNeverWorseThanStandard) {
  for (int i = 0; i < 3; ++i) {
    const Image img = data::dataset_image(data::DatasetId::kBSDS200, i, 64);
    const jpeg::CoeffImage ci = forward_transform(img, 50);
    const size_t std_bits = entropy_bit_count(ci);
    const size_t opt_bits = entropy_bit_count_optimized(ci);
    EXPECT_LE(opt_bits, std_bits) << "image " << i;
    EXPECT_GT(opt_bits, 0u);
  }
}

TEST(Codec, OptimizedTablesWorkOnDroppedStreams) {
  const Image img = data::dataset_image(data::DatasetId::kKodak, 0, 64);
  jpeg::CoeffImage ci = forward_transform(img, 50);
  for (auto& comp : ci.comps) {
    for (auto& block : comp.blocks) block[0] = 0;
  }
  const size_t bits = entropy_bit_count_optimized(ci);
  EXPECT_GT(bits, 0u);
  EXPECT_LE(bits, entropy_bit_count(ci));
}

TEST(Codec, TildeImageBlockMeansAreNearZero) {
  CoeffImage ci = forward_transform(test_image(64), 50);
  // Zero all DC: every 8x8 block of tilde must average ~0.
  for (auto& comp : ci.comps) {
    for (auto& block : comp.blocks) block[0] = 0;
  }
  const Image tilde = tilde_image(ci);
  for (int by = 0; by < 8; ++by) {
    for (int bx = 0; bx < 8; ++bx) {
      double mean = 0.0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          mean += tilde.at(0, by * 8 + y, bx * 8 + x);
        }
      }
      EXPECT_NEAR(mean / 64.0, 0.0, 0.05) << by << "," << bx;
    }
  }
}

}  // namespace
}  // namespace dcdiff::jpeg
