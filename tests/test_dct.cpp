#include "jpeg/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/rng.h"

namespace dcdiff::jpeg {
namespace {

PixelBlock random_block(Rng& rng, float lo = -128.0f, float hi = 127.0f) {
  PixelBlock b;
  for (float& v : b) v = rng.uniform(lo, hi);
  return b;
}

TEST(Dct, ConstantBlockHasOnlyDC) {
  PixelBlock px;
  px.fill(10.0f);
  CoefBlock cf;
  fdct8x8(px, cf);
  // DC of a constant block m is 8*m under JPEG normalisation.
  EXPECT_NEAR(cf[0], 80.0f, 1e-3);
  for (int i = 1; i < kBlockSamples; ++i) EXPECT_NEAR(cf[i], 0.0f, 1e-3);
}

TEST(Dct, DCValueIsEightTimesMean) {
  Rng rng(3);
  const PixelBlock px = random_block(rng);
  CoefBlock cf;
  fdct8x8(px, cf);
  double mean = 0.0;
  for (float v : px) mean += v;
  mean /= kBlockSamples;
  EXPECT_NEAR(cf[0], 8.0 * mean, 1e-2);
}

TEST(Dct, ZeroingDCShiftsByMeanOnly) {
  // The DC-drop premise: removing DC leaves within-block differences intact.
  Rng rng(5);
  const PixelBlock px = random_block(rng);
  CoefBlock cf;
  fdct8x8(px, cf);
  const float mean = cf[0] / 8.0f;
  cf[0] = 0.0f;
  PixelBlock back;
  idct8x8(cf, back);
  for (int i = 0; i < kBlockSamples; ++i) {
    EXPECT_NEAR(back[i], px[i] - mean, 1e-3);
  }
}

class DctRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DctRoundTrip, InverseRecoversInput) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const PixelBlock px = random_block(rng);
  CoefBlock cf;
  PixelBlock back;
  fdct8x8(px, cf);
  idct8x8(cf, back);
  for (int i = 0; i < kBlockSamples; ++i) EXPECT_NEAR(back[i], px[i], 1e-3);
}

TEST_P(DctRoundTrip, ParsevalEnergyPreserved) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const PixelBlock px = random_block(rng);
  CoefBlock cf;
  fdct8x8(px, cf);
  double e_pix = 0.0, e_coef = 0.0;
  for (float v : px) e_pix += static_cast<double>(v) * v;
  for (float v : cf) e_coef += static_cast<double>(v) * v;
  EXPECT_NEAR(e_coef, e_pix, 1e-2 * std::max(1.0, e_pix));
}

TEST_P(DctRoundTrip, FastMatchesReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  const PixelBlock px = random_block(rng);
  CoefBlock ref, fast;
  fdct8x8(px, ref);
  fdct8x8_fast(px, fast);
  for (int i = 0; i < kBlockSamples; ++i) EXPECT_NEAR(fast[i], ref[i], 2e-2);
  PixelBlock iref, ifast;
  idct8x8(ref, iref);
  idct8x8_fast(ref, ifast);
  for (int i = 0; i < kBlockSamples; ++i) EXPECT_NEAR(ifast[i], iref[i], 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctRoundTrip, ::testing::Range(0, 16));

TEST(Dct, Linearity) {
  Rng rng(9);
  const PixelBlock a = random_block(rng);
  const PixelBlock b = random_block(rng);
  PixelBlock sum;
  for (int i = 0; i < kBlockSamples; ++i) sum[i] = a[i] + 2.0f * b[i];
  CoefBlock ca, cb, cs;
  fdct8x8(a, ca);
  fdct8x8(b, cb);
  fdct8x8(sum, cs);
  for (int i = 0; i < kBlockSamples; ++i) {
    EXPECT_NEAR(cs[i], ca[i] + 2.0f * cb[i], 1e-2);
  }
}

TEST(Dct, SingleBasisFunctionRoundTrip) {
  // Each frequency basis vector survives the round trip exactly.
  for (int k = 0; k < kBlockSamples; k += 9) {
    CoefBlock cf{};
    cf[k] = 100.0f;
    PixelBlock px;
    idct8x8(cf, px);
    CoefBlock back;
    fdct8x8(px, back);
    for (int i = 0; i < kBlockSamples; ++i) {
      EXPECT_NEAR(back[i], cf[i], 1e-3) << "basis " << k << " coef " << i;
    }
  }
}

}  // namespace
}  // namespace dcdiff::jpeg
