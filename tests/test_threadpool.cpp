#include "nn/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dcdiff::nn {
namespace {

TEST(ThreadPool, SingletonReportsAtLeastOneThread) {
  EXPECT_GE(ThreadPool::instance().num_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangesArePartitioned) {
  const int64_t n = 257;  // awkward size
  std::vector<int> counts(static_cast<size_t>(n), 0);
  parallel_for_ranges(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++counts[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), n);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPool, ZeroAndNegativeSizesAreNoOps) {
  bool called = false;
  parallel_for(0, [&](int64_t) { called = true; });
  parallel_for(-5, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElement) {
  int value = 0;
  parallel_for(1, [&](int64_t i) { value = static_cast<int>(i) + 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SequentialCallsReuseWorkers) {
  // Exercises the generation counter: repeated dispatches must not deadlock
  // or double-run tasks.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    parallel_for(64, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, DedicatedPoolDeterministicPartition) {
  ThreadPool pool(4);
  // Record which range handled each index; ranges must be contiguous chunks.
  std::vector<int64_t> begin_of(100, -1);
  pool.parallel_ranges(100, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      begin_of[static_cast<size_t>(i)] = begin;
    }
  });
  // Every index covered; chunk starts are non-decreasing.
  int64_t prev = 0;
  for (int64_t b : begin_of) {
    ASSERT_GE(b, 0);
    ASSERT_GE(b, prev - 100);  // sanity
    prev = std::max(prev, b);
  }
}

}  // namespace
}  // namespace dcdiff::nn
