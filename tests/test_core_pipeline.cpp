#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

namespace dcdiff::core {
namespace {

// Tiny configuration: exercises every code path in seconds on one core.
DCDiffConfig tiny_config(const std::string& tag) {
  DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "test_ae_" + tag;
  cfg.tag = "test_" + tag;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ = std::filesystem::temp_directory_path() / "dcdiff_test_cache";
    std::filesystem::create_directories(cache_dir_);
    setenv("DCDIFF_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }
  static std::filesystem::path cache_dir_;
};

std::filesystem::path PipelineTest::cache_dir_;

jpeg::CoeffImage dropped_for(const Image& img, int quality = 50) {
  jpeg::CoeffImage ci = jpeg::forward_transform(img, quality);
  jpeg::drop_dc(ci);
  return ci;
}

TEST_F(PipelineTest, TrainingRunsAndCaches) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  EXPECT_TRUE(std::filesystem::exists(
      std::string(std::getenv("DCDIFF_CACHE_DIR")) +
      "/dcdiff_test_ae_a.bin"));
  EXPECT_TRUE(std::filesystem::exists(
      std::string(std::getenv("DCDIFF_CACHE_DIR")) +
      "/dcdiff_test_a_diff.bin"));
  EXPECT_TRUE(std::filesystem::exists(
      std::string(std::getenv("DCDIFF_CACHE_DIR")) +
      "/dcdiff_test_a_fmpp.bin"));
}

TEST_F(PipelineTest, CachedModelReproducesReconstruction) {
  const Image img = data::dataset_image(data::DatasetId::kKodak, 0, 32);
  const jpeg::CoeffImage dropped = dropped_for(img);

  DCDiffModel m1(tiny_config("a"));
  m1.train_or_load();  // loads from the cache written above (same tag)
  const Image r1 = m1.reconstruct(dropped);

  DCDiffModel m2(tiny_config("a"));
  m2.train_or_load();
  const Image r2 = m2.reconstruct(dropped);

  ASSERT_EQ(r1.width(), r2.width());
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < r1.plane(c).size(); ++i) {
      ASSERT_FLOAT_EQ(r1.plane(c)[i], r2.plane(c)[i]);
    }
  }
}

TEST_F(PipelineTest, ReconstructShapesAndRange) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img = data::dataset_image(data::DatasetId::kInria, 0, 32);
  const Image rec = model.reconstruct(dropped_for(img));
  EXPECT_EQ(rec.width(), 32);
  EXPECT_EQ(rec.height(), 32);
  EXPECT_EQ(rec.channels(), 3);
  for (int c = 0; c < 3; ++c) {
    for (float v : rec.plane(c)) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 255.0f);
    }
  }
}

TEST_F(PipelineTest, ReconstructHandlesNonMultipleDimensions) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img =
      crop(data::dataset_image(data::DatasetId::kSet5, 0, 64), 0, 0, 44, 36);
  const Image rec = model.reconstruct(dropped_for(img));
  EXPECT_EQ(rec.width(), 44);
  EXPECT_EQ(rec.height(), 36);
}

TEST_F(PipelineTest, ReconstructIsDeterministic) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img = data::dataset_image(data::DatasetId::kKodak, 1, 32);
  const Image a = model.reconstruct(dropped_for(img));
  const Image b = model.reconstruct(dropped_for(img));
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < a.plane(c).size(); ++i) {
      ASSERT_FLOAT_EQ(a.plane(c)[i], b.plane(c)[i]);
    }
  }
}

TEST_F(PipelineTest, FmppToggleChangesOutput) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img = data::dataset_image(data::DatasetId::kUrban100, 0, 32);
  const jpeg::CoeffImage dropped = dropped_for(img);
  core::ReconstructOptions with_fmpp;  // defaults: use_fmpp = true
  core::ReconstructOptions without_fmpp;
  without_fmpp.use_fmpp = false;
  const Image with = model.reconstruct(dropped, with_fmpp);
  const Image without = model.reconstruct(dropped, without_fmpp);
  double diff = 0.0;
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < with.plane(c).size(); ++i) {
      diff += std::abs(with.plane(c)[i] - without.plane(c)[i]);
    }
  }
  EXPECT_GT(diff, 1e-3);
}

TEST_F(PipelineTest, AutoencodePathWorks) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img = data::dataset_image(data::DatasetId::kBSDS200, 0, 32);
  const Image rec = model.autoencode(img, dropped_for(img));
  EXPECT_EQ(rec.width(), img.width());
  EXPECT_EQ(rec.height(), img.height());
}

TEST_F(PipelineTest, SenderEncodeSavesBits) {
  const Image img = data::dataset_image(data::DatasetId::kKodak, 2, 64);
  const SenderOutput out = sender_encode(img, 50);
  EXPECT_GT(out.standard_bits, 0u);
  EXPECT_LT(out.dropped_bits, out.standard_bits);
  EXPECT_FALSE(out.bytes.empty());
  // The bitstream must decode back to a valid coefficient image.
  const jpeg::CoeffImage ci = jpeg::decode_jfif(out.bytes);
  EXPECT_EQ(ci.width, 64);
}

TEST_F(PipelineTest, ReceiverReconstructFromBitstream) {
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  const Image img = data::dataset_image(data::DatasetId::kSet14, 0, 32);
  const SenderOutput out = sender_encode(img, 50);
  const Image rec = receiver_reconstruct(out.bytes, model);
  EXPECT_EQ(rec.width(), 32);
  EXPECT_GT(metrics::psnr(img, rec), 8.0);  // sanity: not garbage
}

TEST_F(PipelineTest, CornerAnchoringFixesGlobalBrightness) {
  // Even a barely-trained model must land in the right brightness range
  // because reconstruction is re-anchored to the known corner DCs.
  DCDiffModel model(tiny_config("a"));
  model.train_or_load();
  Image bright(32, 32, ColorSpace::kRGB, 210.0f);
  const Image rec = model.reconstruct(dropped_for(bright));
  double mean = 0.0;
  for (float v : rec.plane(0)) mean += v;
  mean /= static_cast<double>(rec.plane(0).size());
  EXPECT_NEAR(mean, 210.0, 25.0);
}

TEST_F(PipelineTest, MldTrainingPathRuns) {
  // Covers the MLD branch of stage 2 (mld_start is reached with 6 steps at
  // 2/5 of the schedule).
  DCDiffConfig cfg = tiny_config("mld");
  cfg.use_mld = true;
  DCDiffModel model(cfg);
  EXPECT_NO_THROW(model.train_or_load());
}

TEST_F(PipelineTest, NoMldVariantRuns) {
  DCDiffConfig cfg = tiny_config("womld");
  cfg.use_mld = false;
  DCDiffModel model(cfg);
  EXPECT_NO_THROW(model.train_or_load());
}

}  // namespace
}  // namespace dcdiff::core
