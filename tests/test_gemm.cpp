// The blocked GEMM compute path: kernel vs reference over a shape sweep,
// im2col/col2im adjointness, conv2d/linear equivalence between the blocked
// and naive routes, gradient checks through the GEMM path, and workspace
// reuse from concurrent pool workers.
#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include "grad_check.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "nn/threadpool.h"
#include "nn/workspace.h"

namespace dcdiff::nn {
namespace {

using dcdiff::testing_util::check_gradient;

// Restores the env-derived default on scope exit so tests don't leak the
// override into each other.
struct NaiveGuard {
  explicit NaiveGuard(bool naive) { set_gemm_naive(naive); }
  ~NaiveGuard() { set_gemm_naive(false); }
};

std::vector<float> random_vec(size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = rng.normal(0.0f, scale);
  return v;
}

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  return Tensor::from_data(shape, random_vec(shape_numel(shape), rng));
}

// Double-precision reference: C = A_op * B_op + beta * C.
void reference_gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, const std::vector<float>& a, int64_t lda,
                    const std::vector<float>& b, int64_t ldb, float beta,
                    std::vector<float>& c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[static_cast<size_t>(p * lda + i)]
                                 : a[static_cast<size_t>(i * lda + p)];
        const float bv = trans_b ? b[static_cast<size_t>(j * ldb + p)]
                                 : b[static_cast<size_t>(p * ldb + j)];
        acc += static_cast<double>(av) * bv;
      }
      float& out = c[static_cast<size_t>(i * ldc + j)];
      out = static_cast<float>(acc + (beta == 0.0f ? 0.0 : beta * out));
    }
  }
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, float rel_tol = 1e-4f) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max(1.0f, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "index " << i;
  }
}

void run_gemm_case(bool trans_a, bool trans_b, int64_t m, int64_t n,
                   int64_t k, float beta, uint64_t seed) {
  Rng rng(seed);
  const int64_t lda = trans_a ? m : k;
  const int64_t ldb = trans_b ? k : n;
  std::vector<float> a = random_vec(static_cast<size_t>(trans_a ? k * m : m * k), rng);
  std::vector<float> b = random_vec(static_cast<size_t>(trans_b ? n * k : k * n), rng);
  std::vector<float> c0 = random_vec(static_cast<size_t>(m * n), rng);
  std::vector<float> got = c0;
  std::vector<float> want = c0;
  gemm(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb, beta,
       got.data(), n);
  reference_gemm(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, want, n);
  expect_close(got, want);
}

TEST(Gemm, ShapeSweepAgainstReference) {
  // Edge shapes around the 6x16 register tile, the KC=256 K-block, and the
  // NC=480 N-block, plus degenerate M/N/K = 1.
  const int64_t ms[] = {1, 2, 5, 6, 7, 13, 33};
  const int64_t ns[] = {1, 15, 16, 17, 64};
  const int64_t ks[] = {1, 7, 64, 300};
  uint64_t seed = 1;
  for (int64_t m : ms) {
    for (int64_t n : ns) {
      for (int64_t k : ks) {
        run_gemm_case(false, false, m, n, k, 0.0f, ++seed);
      }
    }
  }
}

TEST(Gemm, TransposedOperandsAndAccumulate) {
  uint64_t seed = 100;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (float beta : {0.0f, 1.0f}) {
        run_gemm_case(ta, tb, 37, 29, 111, beta, ++seed);
      }
    }
  }
}

TEST(Gemm, LargeEnoughToEngageAllBlockingLevels) {
  // m > several MR panels, n > NC, k > KC: exercises the jc/pc loops and
  // the beta=1 continuation across K-blocks.
  run_gemm_case(false, false, 64, 600, 520, 0.0f, 7);
  run_gemm_case(false, true, 40, 500, 300, 1.0f, 8);
}

TEST(Gemm, NaiveEscapeHatchMatchesBlocked) {
  Rng rng(9);
  const int64_t m = 30, n = 70, k = 130;
  std::vector<float> a = random_vec(static_cast<size_t>(m * k), rng);
  std::vector<float> b = random_vec(static_cast<size_t>(k * n), rng);
  std::vector<float> blocked(static_cast<size_t>(m * n));
  std::vector<float> naive(static_cast<size_t>(m * n));
  {
    NaiveGuard guard(false);
    gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
         blocked.data(), n);
  }
  {
    NaiveGuard guard(true);
    gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, naive.data(),
         n);
  }
  expect_close(blocked, naive);
}

// ---------- im2col / col2im ----------

TEST(Im2col, MatchesDirectPatchExtraction) {
  const int c = 3, h = 7, w = 5, kh = 3, kw = 3, stride = 2, pad = 1;
  const int ho = (h + 2 * pad - kh) / stride + 1;
  const int wo = (w + 2 * pad - kw) / stride + 1;
  Rng rng(11);
  std::vector<float> x = random_vec(static_cast<size_t>(c) * h * w, rng);
  std::vector<float> col(static_cast<size_t>(c) * kh * kw * ho * wo, -42.0f);
  im2col(x.data(), c, h, w, kh, kw, stride, pad, ho, wo, col.data());
  for (int ci = 0; ci < c; ++ci) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int r = (ci * kh + ky) * kw + kx;
        for (int oy = 0; oy < ho; ++oy) {
          for (int ox = 0; ox < wo; ++ox) {
            const int iy = oy * stride - pad + ky;
            const int ix = ox * stride - pad + kx;
            const float want =
                (iy < 0 || iy >= h || ix < 0 || ix >= w)
                    ? 0.0f
                    : x[static_cast<size_t>((ci * h + iy) * w + ix)];
            EXPECT_FLOAT_EQ(
                col[static_cast<size_t>((r * ho + oy) * wo + ox)], want)
                << "r=" << r << " oy=" << oy << " ox=" << ox;
          }
        }
      }
    }
  }
}

TEST(Im2col, Col2imRoundTripScalesByPatchCoverage) {
  // col2im(im2col(x)) multiplies each input pixel by the number of patches
  // that read it; verify against a directly-counted coverage map.
  constexpr std::array<std::pair<int, int>, 4> configs{
      {{1, 1}, {2, 1}, {1, 0}, {3, 2}}};
  for (const auto& [stride, pad] : configs) {
    const int c = 2, h = 6, w = 9, kh = 3, kw = 3;
    const int ho = (h + 2 * pad - kh) / stride + 1;
    const int wo = (w + 2 * pad - kw) / stride + 1;
    if (ho <= 0 || wo <= 0) continue;
    Rng rng(13);
    std::vector<float> x = random_vec(static_cast<size_t>(c) * h * w, rng);
    std::vector<float> col(static_cast<size_t>(c) * kh * kw * ho * wo);
    im2col(x.data(), c, h, w, kh, kw, stride, pad, ho, wo, col.data());
    std::vector<float> back(x.size(), 0.0f);
    col2im_add(col.data(), c, h, w, kh, kw, stride, pad, ho, wo, back.data());
    std::vector<int> coverage(static_cast<size_t>(h) * w, 0);
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        for (int oy = 0; oy < ho; ++oy) {
          for (int ox = 0; ox < wo; ++ox) {
            const int iy = oy * stride - pad + ky;
            const int ix = ox * stride - pad + kx;
            if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
              ++coverage[static_cast<size_t>(iy * w + ix)];
            }
          }
        }
      }
    }
    for (int ci = 0; ci < c; ++ci) {
      for (int i = 0; i < h * w; ++i) {
        const size_t idx = static_cast<size_t>(ci * h * w + i);
        EXPECT_NEAR(back[idx], x[idx] * static_cast<float>(coverage[static_cast<size_t>(i)]),
                    1e-4f * std::max(1.0f, std::abs(back[idx])))
            << "stride=" << stride << " pad=" << pad << " idx=" << idx;
      }
    }
  }
}

// ---------- conv2d / linear equivalence, blocked vs naive ----------

struct ConvCase {
  int n, c, h, w, f, k, stride, pad;
};

TEST(ConvGemmPath, ForwardAndGradMatchNaiveRoute) {
  const ConvCase cases[] = {
      {2, 3, 8, 8, 5, 3, 1, 1},   // padded same-size conv
      {1, 4, 9, 7, 6, 3, 2, 1},   // strided, non-square
      {2, 4, 6, 6, 8, 1, 1, 0},   // 1x1 zero-copy fast path
      {1, 2, 5, 5, 3, 5, 1, 2},   // kernel as large as the input
  };
  for (const ConvCase& cc : cases) {
    Rng rng(17);
    Tensor x = random_tensor({cc.n, cc.c, cc.h, cc.w}, rng);
    Tensor w = random_tensor({cc.f, cc.c, cc.k, cc.k}, rng);
    Tensor b = random_tensor({cc.f}, rng);
    x.set_requires_grad(true);
    w.set_requires_grad(true);
    b.set_requires_grad(true);

    auto run = [&](bool naive) {
      NaiveGuard guard(naive);
      x.zero_grad();
      w.zero_grad();
      b.zero_grad();
      Tensor y = conv2d(x, w, b, cc.stride, cc.pad);
      sum(mul(y, y)).backward();
      return std::tuple{y.value(), x.grad(), w.grad(), b.grad()};
    };
    auto [yv_b, xg_b, wg_b, bg_b] = run(false);
    auto [yv_n, xg_n, wg_n, bg_n] = run(true);
    expect_close(yv_b, yv_n);
    expect_close(xg_b, xg_n);
    expect_close(wg_b, wg_n);
    expect_close(bg_b, bg_n);
  }
}

TEST(LinearGemmPath, ForwardAndGradMatchNaiveRoute) {
  Rng rng(19);
  Tensor x = random_tensor({9, 37}, rng);
  Tensor w = random_tensor({23, 37}, rng);
  Tensor b = random_tensor({23}, rng);
  x.set_requires_grad(true);
  w.set_requires_grad(true);
  b.set_requires_grad(true);
  auto run = [&](bool naive) {
    NaiveGuard guard(naive);
    x.zero_grad();
    w.zero_grad();
    b.zero_grad();
    Tensor y = linear(x, w, b);
    sum(mul(y, y)).backward();
    return std::tuple{y.value(), x.grad(), w.grad(), b.grad()};
  };
  auto [yv_b, xg_b, wg_b, bg_b] = run(false);
  auto [yv_n, xg_n, wg_n, bg_n] = run(true);
  expect_close(yv_b, yv_n);
  expect_close(xg_b, xg_n);
  expect_close(wg_b, wg_n);
  expect_close(bg_b, bg_n);
}

TEST(ConvGemmPath, GradCheckThroughBlockedKernel) {
  NaiveGuard guard(false);
  Rng rng(23);
  Tensor x = random_tensor({1, 2, 5, 5}, rng);
  Tensor w = random_tensor({3, 2, 3, 3}, rng);
  Tensor b = random_tensor({3}, rng);
  check_gradient(x, [&] { return mean(conv2d(x, w, b, 2, 1)); });
  check_gradient(w, [&] { return mean(conv2d(x, w, b, 1, 1)); });
}

TEST(LinearGemmPath, GradCheckThroughBlockedKernel) {
  NaiveGuard guard(false);
  Rng rng(29);
  Tensor x = random_tensor({3, 7}, rng);
  Tensor w = random_tensor({4, 7}, rng);
  Tensor b = random_tensor({4}, rng);
  check_gradient(x, [&] { return mean(linear(x, w, b)); });
  check_gradient(w, [&] { return mean(linear(x, w, b)); });
}

// ---------- workspace ----------

TEST(Workspace, ScopeRewindReusesMemory) {
  Workspace& ws = Workspace::tls();
  size_t reserved_after_first = 0;
  {
    Workspace::Scope scope;
    float* p = ws.floats(1000);
    p[0] = 1.0f;
    p[999] = 2.0f;
    EXPECT_GE(ws.bytes_in_use(), 1000 * sizeof(float));
    reserved_after_first = ws.bytes_reserved();
  }
  const size_t in_use_after = ws.bytes_in_use();
  {
    Workspace::Scope scope;
    ws.floats(500);
    ws.floats(500);
    // Same arena blocks serve the second scope: no new reservation.
    EXPECT_EQ(ws.bytes_reserved(), reserved_after_first);
  }
  EXPECT_EQ(ws.bytes_in_use(), in_use_after);
}

TEST(Workspace, PointersSurviveArenaGrowthWithinScope) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope;
  float* small = ws.floats(16);
  for (int i = 0; i < 16; ++i) small[i] = static_cast<float>(i);
  // Force new block allocations; `small` must stay valid and intact.
  ws.floats(1 << 20);
  ws.floats(1 << 21);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(small[i], static_cast<float>(i));
  }
}

TEST(Workspace, ConcurrentConvCallsFromPoolWorkersMatchSerial) {
  // Each pool worker runs conv2d (whose GEMM would itself try to
  // parallelize -- the nested call must run inline) against its own
  // thread-local arena. Results must be identical to serial execution.
  NoGradGuard no_grad;
  Rng rng(31);
  const int tasks = 16;
  std::vector<Tensor> xs, ws_, bs;
  for (int i = 0; i < tasks; ++i) {
    xs.push_back(random_tensor({1, 3, 12, 12}, rng));
    ws_.push_back(random_tensor({8, 3, 3, 3}, rng));
    bs.push_back(random_tensor({8}, rng));
  }
  std::vector<std::vector<float>> serial(static_cast<size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    serial[static_cast<size_t>(i)] =
        conv2d(xs[static_cast<size_t>(i)], ws_[static_cast<size_t>(i)],
               bs[static_cast<size_t>(i)], 1, 1)
            .value();
  }
  std::vector<std::vector<float>> concurrent(static_cast<size_t>(tasks));
  parallel_for(tasks, [&](int64_t i) {
    concurrent[static_cast<size_t>(i)] =
        conv2d(xs[static_cast<size_t>(i)], ws_[static_cast<size_t>(i)],
               bs[static_cast<size_t>(i)], 1, 1)
            .value();
  });
  for (int i = 0; i < tasks; ++i) {
    EXPECT_EQ(serial[static_cast<size_t>(i)], concurrent[static_cast<size_t>(i)])
        << "task " << i;
  }
}

// ---------- threadpool grain ----------

TEST(ThreadPoolGrain, GrainedRangesCoverEveryIndexOnce) {
  constexpr std::array<std::pair<int64_t, int64_t>, 4> cases{
      {{100, 7}, {5, 100}, {4096, 1}, {1, 1}}};
  for (const auto& [n, grain] : cases) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    for (auto& h : hits) h.store(0);
    parallel_for_ranges(n, grain, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

}  // namespace
}  // namespace dcdiff::nn
