# Empty dependencies file for train_dcdiff.
# This may be replaced when dependencies are built.
