file(REMOVE_RECURSE
  "CMakeFiles/train_dcdiff.dir/train_dcdiff.cpp.o"
  "CMakeFiles/train_dcdiff.dir/train_dcdiff.cpp.o.d"
  "train_dcdiff"
  "train_dcdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_dcdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
