file(REMOVE_RECURSE
  "CMakeFiles/codec_tool.dir/codec_tool.cpp.o"
  "CMakeFiles/codec_tool.dir/codec_tool.cpp.o.d"
  "codec_tool"
  "codec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
