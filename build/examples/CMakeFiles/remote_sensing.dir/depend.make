# Empty dependencies file for remote_sensing.
# This may be replaced when dependencies are built.
