# Empty dependencies file for iot_camera.
# This may be replaced when dependencies are built.
