file(REMOVE_RECURSE
  "CMakeFiles/iot_camera.dir/iot_camera.cpp.o"
  "CMakeFiles/iot_camera.dir/iot_camera.cpp.o.d"
  "iot_camera"
  "iot_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
