file(REMOVE_RECURSE
  "CMakeFiles/test_codec_robustness.dir/test_codec_robustness.cpp.o"
  "CMakeFiles/test_codec_robustness.dir/test_codec_robustness.cpp.o.d"
  "test_codec_robustness"
  "test_codec_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
