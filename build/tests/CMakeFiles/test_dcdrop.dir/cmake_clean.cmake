file(REMOVE_RECURSE
  "CMakeFiles/test_dcdrop.dir/test_dcdrop.cpp.o"
  "CMakeFiles/test_dcdrop.dir/test_dcdrop.cpp.o.d"
  "test_dcdrop"
  "test_dcdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
