# Empty compiler generated dependencies file for test_dcdrop.
# This may be replaced when dependencies are built.
