file(REMOVE_RECURSE
  "CMakeFiles/test_dct.dir/test_dct.cpp.o"
  "CMakeFiles/test_dct.dir/test_dct.cpp.o.d"
  "test_dct"
  "test_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
