file(REMOVE_RECURSE
  "CMakeFiles/test_postprocess.dir/test_postprocess.cpp.o"
  "CMakeFiles/test_postprocess.dir/test_postprocess.cpp.o.d"
  "test_postprocess"
  "test_postprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
