
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_modules.cpp" "tests/CMakeFiles/test_modules.dir/test_modules.cpp.o" "gcc" "tests/CMakeFiles/test_modules.dir/test_modules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/dcdiff_image.dir/DependInfo.cmake"
  "/root/repo/build/src/jpeg/CMakeFiles/dcdiff_jpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dcdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dcdiff_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dcdiff_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/downstream/CMakeFiles/dcdiff_downstream.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdiff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
