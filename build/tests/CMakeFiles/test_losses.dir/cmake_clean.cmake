file(REMOVE_RECURSE
  "CMakeFiles/test_losses.dir/test_losses.cpp.o"
  "CMakeFiles/test_losses.dir/test_losses.cpp.o.d"
  "test_losses"
  "test_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
