file(REMOVE_RECURSE
  "libdcdiff_image.a"
)
