file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_image.dir/image.cpp.o"
  "CMakeFiles/dcdiff_image.dir/image.cpp.o.d"
  "libdcdiff_image.a"
  "libdcdiff_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
