# Empty dependencies file for dcdiff_image.
# This may be replaced when dependencies are built.
