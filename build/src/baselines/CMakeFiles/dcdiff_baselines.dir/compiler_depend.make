# Empty compiler generated dependencies file for dcdiff_baselines.
# This may be replaced when dependencies are built.
