file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_baselines.dir/dc_recovery.cpp.o"
  "CMakeFiles/dcdiff_baselines.dir/dc_recovery.cpp.o.d"
  "CMakeFiles/dcdiff_baselines.dir/tii2021.cpp.o"
  "CMakeFiles/dcdiff_baselines.dir/tii2021.cpp.o.d"
  "libdcdiff_baselines.a"
  "libdcdiff_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
