file(REMOVE_RECURSE
  "libdcdiff_baselines.a"
)
