# Empty compiler generated dependencies file for dcdiff_core.
# This may be replaced when dependencies are built.
