file(REMOVE_RECURSE
  "libdcdiff_core.a"
)
