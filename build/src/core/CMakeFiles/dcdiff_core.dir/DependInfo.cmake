
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autoencoder.cpp" "src/core/CMakeFiles/dcdiff_core.dir/autoencoder.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/autoencoder.cpp.o.d"
  "/root/repo/src/core/diffusion.cpp" "src/core/CMakeFiles/dcdiff_core.dir/diffusion.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/diffusion.cpp.o.d"
  "/root/repo/src/core/fmpp.cpp" "src/core/CMakeFiles/dcdiff_core.dir/fmpp.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/fmpp.cpp.o.d"
  "/root/repo/src/core/losses.cpp" "src/core/CMakeFiles/dcdiff_core.dir/losses.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/losses.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/dcdiff_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/postprocess.cpp" "src/core/CMakeFiles/dcdiff_core.dir/postprocess.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/postprocess.cpp.o.d"
  "/root/repo/src/core/regression.cpp" "src/core/CMakeFiles/dcdiff_core.dir/regression.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/regression.cpp.o.d"
  "/root/repo/src/core/tensor_image.cpp" "src/core/CMakeFiles/dcdiff_core.dir/tensor_image.cpp.o" "gcc" "src/core/CMakeFiles/dcdiff_core.dir/tensor_image.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jpeg/CMakeFiles/dcdiff_jpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dcdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dcdiff_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
