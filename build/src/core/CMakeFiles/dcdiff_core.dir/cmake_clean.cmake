file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_core.dir/autoencoder.cpp.o"
  "CMakeFiles/dcdiff_core.dir/autoencoder.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/diffusion.cpp.o"
  "CMakeFiles/dcdiff_core.dir/diffusion.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/fmpp.cpp.o"
  "CMakeFiles/dcdiff_core.dir/fmpp.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/losses.cpp.o"
  "CMakeFiles/dcdiff_core.dir/losses.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/pipeline.cpp.o"
  "CMakeFiles/dcdiff_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/postprocess.cpp.o"
  "CMakeFiles/dcdiff_core.dir/postprocess.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/regression.cpp.o"
  "CMakeFiles/dcdiff_core.dir/regression.cpp.o.d"
  "CMakeFiles/dcdiff_core.dir/tensor_image.cpp.o"
  "CMakeFiles/dcdiff_core.dir/tensor_image.cpp.o.d"
  "libdcdiff_core.a"
  "libdcdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
