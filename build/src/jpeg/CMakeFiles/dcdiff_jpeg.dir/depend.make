# Empty dependencies file for dcdiff_jpeg.
# This may be replaced when dependencies are built.
