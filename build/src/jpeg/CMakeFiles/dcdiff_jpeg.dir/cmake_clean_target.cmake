file(REMOVE_RECURSE
  "libdcdiff_jpeg.a"
)
