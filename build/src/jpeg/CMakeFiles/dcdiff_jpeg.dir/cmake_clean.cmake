file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_jpeg.dir/bitio.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/bitio.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/codec.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/codec.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/dcdrop.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/dcdrop.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/dct.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/dct.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/huffman.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/huffman.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/progressive.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/progressive.cpp.o.d"
  "CMakeFiles/dcdiff_jpeg.dir/quant.cpp.o"
  "CMakeFiles/dcdiff_jpeg.dir/quant.cpp.o.d"
  "libdcdiff_jpeg.a"
  "libdcdiff_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
