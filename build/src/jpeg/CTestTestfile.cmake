# CMake generated Testfile for 
# Source directory: /root/repo/src/jpeg
# Build directory: /root/repo/build/src/jpeg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
