file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_sim.dir/device.cpp.o"
  "CMakeFiles/dcdiff_sim.dir/device.cpp.o.d"
  "libdcdiff_sim.a"
  "libdcdiff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
