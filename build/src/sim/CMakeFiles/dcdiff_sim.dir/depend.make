# Empty dependencies file for dcdiff_sim.
# This may be replaced when dependencies are built.
