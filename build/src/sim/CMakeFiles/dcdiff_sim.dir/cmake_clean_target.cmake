file(REMOVE_RECURSE
  "libdcdiff_sim.a"
)
