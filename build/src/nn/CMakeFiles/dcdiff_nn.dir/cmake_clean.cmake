file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_nn.dir/cache.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/cache.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/modules.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/modules.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/ops.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/ops.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/optim.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/optim.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/serialize.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/tensor.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/dcdiff_nn.dir/threadpool.cpp.o"
  "CMakeFiles/dcdiff_nn.dir/threadpool.cpp.o.d"
  "libdcdiff_nn.a"
  "libdcdiff_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
