file(REMOVE_RECURSE
  "libdcdiff_nn.a"
)
