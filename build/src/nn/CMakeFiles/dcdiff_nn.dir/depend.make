# Empty dependencies file for dcdiff_nn.
# This may be replaced when dependencies are built.
