file(REMOVE_RECURSE
  "libdcdiff_downstream.a"
)
