file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_downstream.dir/classifier.cpp.o"
  "CMakeFiles/dcdiff_downstream.dir/classifier.cpp.o.d"
  "libdcdiff_downstream.a"
  "libdcdiff_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
