# Empty dependencies file for dcdiff_downstream.
# This may be replaced when dependencies are built.
