file(REMOVE_RECURSE
  "libdcdiff_metrics.a"
)
