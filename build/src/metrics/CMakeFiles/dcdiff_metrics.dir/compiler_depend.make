# Empty compiler generated dependencies file for dcdiff_metrics.
# This may be replaced when dependencies are built.
