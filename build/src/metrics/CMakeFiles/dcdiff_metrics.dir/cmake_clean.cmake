file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dcdiff_metrics.dir/metrics.cpp.o.d"
  "libdcdiff_metrics.a"
  "libdcdiff_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
