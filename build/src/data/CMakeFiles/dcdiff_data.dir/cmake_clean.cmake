file(REMOVE_RECURSE
  "CMakeFiles/dcdiff_data.dir/datasets.cpp.o"
  "CMakeFiles/dcdiff_data.dir/datasets.cpp.o.d"
  "libdcdiff_data.a"
  "libdcdiff_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdiff_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
