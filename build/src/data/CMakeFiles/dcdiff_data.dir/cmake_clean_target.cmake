file(REMOVE_RECURSE
  "libdcdiff_data.a"
)
