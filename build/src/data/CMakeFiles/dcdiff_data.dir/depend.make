# Empty dependencies file for dcdiff_data.
# This may be replaced when dependencies are built.
