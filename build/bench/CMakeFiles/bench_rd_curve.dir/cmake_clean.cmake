file(REMOVE_RECURSE
  "CMakeFiles/bench_rd_curve.dir/bench_rd_curve.cpp.o"
  "CMakeFiles/bench_rd_curve.dir/bench_rd_curve.cpp.o.d"
  "bench_rd_curve"
  "bench_rd_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rd_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
