# CTest script: perf smoke of the GEMM compute path. Runs quickstart (tiny
# fast model, weights cached between the two runs) twice -- first with
# DCDIFF_GEMM_NAIVE=1 (reference GEMM loop), then with the blocked kernel --
# writing a DCDIFF_BENCH_JSON report for each. Validates that both reports
# exist, parse as JSON, and carry a positive receiver-seconds record plus the
# nn.workspace metrics gauge. The JSONs land in WORK_DIR as
# BENCH_pr3_naive.json / BENCH_pr3.json so perf regressions can be diffed
# offline; the smoke itself only asserts structure, not a speedup ratio
# (tiny-model times are noise-dominated on loaded CI hosts).
#
# Invoked as:
#   cmake -DQUICKSTART=<path-to-binary> -DWORK_DIR=<scratch-dir>
#         -P perf_smoke_test.cmake

if(NOT QUICKSTART)
  message(FATAL_ERROR "QUICKSTART binary path not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_quickstart json_path naive)
  file(REMOVE "${json_path}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "DCDIFF_QUICKSTART_FAST=1"
            "DCDIFF_CACHE_DIR=${WORK_DIR}/weights"
            "DCDIFF_BENCH_JSON=${json_path}"
            "DCDIFF_GEMM_NAIVE=${naive}"
            "DCDIFF_LOG_LEVEL=warn"
            "${QUICKSTART}"
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE run_result
    OUTPUT_VARIABLE run_output
    ERROR_VARIABLE run_errors)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "quickstart (DCDIFF_GEMM_NAIVE=${naive}) exited with "
                        "${run_result}\nstdout:\n${run_output}\n"
                        "stderr:\n${run_errors}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "quickstart did not write ${json_path}\n"
                        "stdout:\n${run_output}")
  endif()
endfunction()

# Validates one report: JSON parses, has >= 1 record with seconds > 0.
function(check_report json_path expect_workspace)
  file(READ "${json_path}" content)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON n_records ERROR_VARIABLE json_err LENGTH "${content}" records)
    if(json_err)
      message(FATAL_ERROR "${json_path} is not valid JSON: ${json_err}")
    endif()
    if(n_records LESS 1)
      message(FATAL_ERROR "${json_path} has no records")
    endif()
    string(JSON seconds GET "${content}" records 0 seconds)
    if(seconds LESS_EQUAL 0)
      message(FATAL_ERROR "${json_path}: non-positive receiver seconds "
                          "(${seconds})")
    endif()
    message(STATUS "${json_path}: receiver ${seconds}s over ${n_records} "
                   "record(s)")
  endif()
  if(expect_workspace)
    # The blocked path must have gone through the scratch arena.
    string(FIND "${content}" "nn.workspace.bytes_peak" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "${json_path} is missing the "
                          "nn.workspace.bytes_peak gauge: the GEMM path did "
                          "not run through the workspace arena")
    endif()
  endif()
endfunction()

# Naive first: its (cold) run also trains/caches the tiny model, so the
# blocked-path run below measures inference only.
run_quickstart("${WORK_DIR}/BENCH_pr3_naive.json" 1)
check_report("${WORK_DIR}/BENCH_pr3_naive.json" FALSE)

run_quickstart("${WORK_DIR}/BENCH_pr3.json" 0)
check_report("${WORK_DIR}/BENCH_pr3.json" TRUE)

message(STATUS "perf smoke OK: ${WORK_DIR}/BENCH_pr3.json")
