# CTest script: end-to-end smoke of the batched serving engine. Runs
# serve_tool (tiny fast model, weights cached in WORK_DIR) with two client
# sessions submitting concurrently and a max_batch=4 worker, and asserts the
# run reports success ("serve_tool: OK") with every request served. The tool
# itself verifies per-request status and reconstruction quality; this script
# only checks process-level behaviour so the smoke stays robust on loaded CI
# hosts.
#
# Invoked as:
#   cmake -DSERVE_TOOL=<path-to-binary> -DWORK_DIR=<scratch-dir>
#         -P serve_smoke_test.cmake

if(NOT SERVE_TOOL)
  message(FATAL_ERROR "SERVE_TOOL binary path not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "DCDIFF_QUICKSTART_FAST=1"
          "DCDIFF_CACHE_DIR=${WORK_DIR}/weights"
          "DCDIFF_SERVE_MAX_BATCH=4"
          "DCDIFF_LOG_LEVEL=warn"
          "${SERVE_TOOL}" 8 2
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_errors)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "serve_tool exited with ${run_result}\n"
                      "stdout:\n${run_output}\nstderr:\n${run_errors}")
endif()

string(FIND "${run_output}" "serve_tool: OK" ok_pos)
if(ok_pos EQUAL -1)
  message(FATAL_ERROR "serve_tool did not report OK\nstdout:\n${run_output}")
endif()
string(FIND "${run_output}" "served 8/8 images" served_pos)
if(served_pos EQUAL -1)
  message(FATAL_ERROR "serve_tool did not serve all 8 requests\n"
                      "stdout:\n${run_output}")
endif()

message(STATUS "serve smoke OK")
