# End-to-end lossless-transcode check of the context-mixing entropy coder:
# drives the codec_tool binary through
#   demo -> encode (Huffman) -> transcode (to cm) -> transcode (--to-huffman)
# and requires
#   * the cm file to be smaller than the Huffman file (the coder's reason to
#     exist), and
#   * the Huffman -> cm -> Huffman round trip to reproduce the original
#     Huffman file byte-for-byte. Byte identity of the re-encoded file is a
#     strictly stronger property than coefficient identity (which codec_tool
#     transcode additionally verifies internally on every run).
#
# Invoked as:
#   cmake -DCODEC_TOOL=<path-to-binary> -DWORK_DIR=<scratch-dir>
#         -P cm_roundtrip_test.cmake

if(NOT CODEC_TOOL)
  message(FATAL_ERROR "CODEC_TOOL binary path not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_tool)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "DCDIFF_LOG_LEVEL=warn"
            "${CODEC_TOOL}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE r
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT r EQUAL 0)
    message(FATAL_ERROR "codec_tool ${ARGN} exited with ${r}\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

run_tool(demo "${WORK_DIR}")
run_tool(encode "${WORK_DIR}/demo.ppm" "${WORK_DIR}/huff.jpg" 50)
run_tool(transcode "${WORK_DIR}/huff.jpg" "${WORK_DIR}/cm.jpg")
run_tool(transcode "${WORK_DIR}/cm.jpg" "${WORK_DIR}/back.jpg" --to-huffman)

file(SIZE "${WORK_DIR}/huff.jpg" huff_size)
file(SIZE "${WORK_DIR}/cm.jpg" cm_size)
if(NOT cm_size LESS huff_size)
  message(FATAL_ERROR "cm transcode did not shrink the file: "
                      "huffman ${huff_size} bytes, cm ${cm_size} bytes")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/huff.jpg" "${WORK_DIR}/back.jpg"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "huffman -> cm -> huffman transcode is not the "
                      "identity: ${WORK_DIR}/huff.jpg differs from "
                      "${WORK_DIR}/back.jpg")
endif()

# DC-dropped cm files must survive the same round trip (the paper's sender
# emits exactly this kind of stream).
run_tool(encode "${WORK_DIR}/demo.ppm" "${WORK_DIR}/drop.jpg" 50 --drop-dc)
run_tool(transcode "${WORK_DIR}/drop.jpg" "${WORK_DIR}/drop_cm.jpg")
run_tool(transcode "${WORK_DIR}/drop_cm.jpg" "${WORK_DIR}/drop_back.jpg"
         --to-huffman)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/drop.jpg" "${WORK_DIR}/drop_back.jpg"
  RESULT_VARIABLE same_drop)
if(NOT same_drop EQUAL 0)
  message(FATAL_ERROR "DC-dropped transcode round trip is not the identity")
endif()

message(STATUS "cm_roundtrip OK: huffman ${huff_size} B -> cm ${cm_size} B, "
               "round trip byte-identical")
