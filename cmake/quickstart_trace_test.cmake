# CTest script: runs examples/quickstart with tracing enabled (tiny fast
# model) and validates that the Chrome trace_event output parses as JSON and
# contains per-DDIM-step spans.
#
# Invoked as:
#   cmake -DQUICKSTART=<path-to-binary> -DWORK_DIR=<scratch-dir>
#         -P quickstart_trace_test.cmake

if(NOT QUICKSTART)
  message(FATAL_ERROR "QUICKSTART binary path not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace_file "${WORK_DIR}/quickstart_trace.json")
file(REMOVE "${trace_file}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "DCDIFF_TRACE_FILE=${trace_file}"
          "DCDIFF_QUICKSTART_FAST=1"
          "DCDIFF_CACHE_DIR=${WORK_DIR}/weights"
          "DCDIFF_LOG_LEVEL=warn"
          "${QUICKSTART}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_errors)

if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${run_result}\n"
                      "stdout:\n${run_output}\nstderr:\n${run_errors}")
endif()

if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "quickstart did not write ${trace_file}\n"
                      "stdout:\n${run_output}")
endif()

file(READ "${trace_file}" trace_content)

# Structural validation: the trace must parse as JSON with a non-empty
# traceEvents array (string(JSON) needs CMake >= 3.19).
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON n_events ERROR_VARIABLE json_err
         LENGTH "${trace_content}" traceEvents)
  if(json_err)
    message(FATAL_ERROR "trace is not valid JSON: ${json_err}")
  endif()
  if(n_events LESS 1)
    message(FATAL_ERROR "trace has no events")
  endif()
  message(STATUS "trace contains ${n_events} span events")
endif()

# The receiver path must have produced per-DDIM-step spans and the top-level
# receiver span.
foreach(span "ddim_step" "ddim_sample" "receiver_reconstruct" "sender_encode")
  string(FIND "${trace_content}" "\"name\":\"${span}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace is missing the '${span}' span")
  endif()
endforeach()

message(STATUS "quickstart trace OK: ${trace_file}")
