# Cross-process golden regression: runs examples/quickstart twice, in two
# separate processes, against the checked-in golden weights
# (tests/golden/weights/*.bin, fixed seeds), and requires
#   * byte-identical output PPMs across the two processes, and
#   * the reported PSNR to match tests/golden/quickstart_psnr.txt to 1e-6.
#
# This pins down full-pipeline determinism (decode -> diffusion sampling ->
# PPM bytes) against kernel or RNG drift that the 2-decimal quickstart table
# would never show.
#
# Invoked as:
#   cmake -DQUICKSTART=<path-to-binary> -DWORK_DIR=<scratch-dir>
#         -DGOLDEN_DIR=<source-tree>/tests/golden
#         -P golden_regression_test.cmake
#
# Regenerating the golden (after an intentional numeric change): run with
# GOLDEN_REGEN=1 in the environment, then commit tests/golden. The golden is
# recorded with the default build flags; a -DDCDIFF_NATIVE_ARCH=ON build may
# legitimately differ in the last bits and is not a supported golden source.

if(NOT QUICKSTART)
  message(FATAL_ERROR "QUICKSTART binary path not set")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "WORK_DIR not set")
endif()
if(NOT GOLDEN_DIR)
  message(FATAL_ERROR "GOLDEN_DIR not set")
endif()

set(weights_dir "${GOLDEN_DIR}/weights")
set(golden_file "${GOLDEN_DIR}/quickstart_psnr.txt")

# Runs quickstart in ${WORK_DIR}/${run} on the golden weights; sets
# psnr_${run} from the machine-readable "quickstart_golden psnr=..." line.
function(run_quickstart run)
  set(dir "${WORK_DIR}/${run}")
  file(REMOVE_RECURSE "${dir}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "DCDIFF_QUICKSTART_FAST=1"
            "DCDIFF_CACHE_DIR=${weights_dir}"
            "DCDIFF_LOG_LEVEL=warn"
            --unset=DCDIFF_TRACE_FILE
            --unset=DCDIFF_METRICS_FILE
            "${QUICKSTART}"
    WORKING_DIRECTORY "${dir}"
    RESULT_VARIABLE run_result
    OUTPUT_VARIABLE run_output
    ERROR_VARIABLE run_errors)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "quickstart (${run}) exited with ${run_result}\n"
                        "stdout:\n${run_output}\nstderr:\n${run_errors}")
  endif()
  string(REGEX MATCH "quickstart_golden psnr=([0-9]+\\.[0-9]+)" m
         "${run_output}")
  if(NOT m)
    message(FATAL_ERROR
            "quickstart (${run}) printed no golden line\n${run_output}")
  endif()
  set(psnr_${run} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# CMake has no float arithmetic: compare PSNRs as integer nano-dB. The
# quickstart line prints 9 decimals, so the conversion is exact.
function(psnr_to_nano value outvar)
  if(NOT value MATCHES "^([0-9]+)\\.([0-9]+)$")
    message(FATAL_ERROR "unparseable PSNR value '${value}'")
  endif()
  set(int_part "${CMAKE_MATCH_1}")
  set(frac_part "${CMAKE_MATCH_2}")
  string(LENGTH "${frac_part}" frac_len)
  if(frac_len GREATER 9)
    string(SUBSTRING "${frac_part}" 0 9 frac_part)
  elseif(frac_len LESS 9)
    math(EXPR pad "9 - ${frac_len}")
    foreach(i RANGE 1 ${pad})
      string(APPEND frac_part "0")
    endforeach()
  endif()
  # Leading zeros in the fraction would read as octal; strip them.
  string(REGEX REPLACE "^0+([0-9])" "\\1" frac_part "${frac_part}")
  math(EXPR nano "${int_part} * 1000000000 + ${frac_part}")
  set(${outvar} "${nano}" PARENT_SCOPE)
endfunction()

if("$ENV{GOLDEN_REGEN}")
  file(REMOVE_RECURSE "${weights_dir}")
  file(MAKE_DIRECTORY "${weights_dir}")
  run_quickstart(regen)
  file(WRITE "${golden_file}" "${psnr_regen}\n")
  message(STATUS "regenerated golden: psnr=${psnr_regen}, "
                 "weights in ${weights_dir} — commit tests/golden/")
  return()
endif()

if(NOT EXISTS "${golden_file}")
  message(FATAL_ERROR "missing ${golden_file} (run with GOLDEN_REGEN=1)")
endif()
file(GLOB golden_weights "${weights_dir}/*.bin")
if(NOT golden_weights)
  message(FATAL_ERROR
          "no golden weights in ${weights_dir} (run with GOLDEN_REGEN=1)")
endif()

run_quickstart(run1)
run_quickstart(run2)

# Separate processes must produce byte-identical images.
foreach(ppm quickstart_dcdiff.ppm quickstart_original.ppm)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/run1/${ppm}" "${WORK_DIR}/run2/${ppm}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${ppm} differs between two processes: "
                        "reconstruction is not deterministic")
  endif()
endforeach()

if(NOT psnr_run1 STREQUAL psnr_run2)
  message(FATAL_ERROR "PSNR differs across processes: "
                      "${psnr_run1} vs ${psnr_run2}")
endif()

file(STRINGS "${golden_file}" golden_value LIMIT_COUNT 1)
string(STRIP "${golden_value}" golden_value)
psnr_to_nano("${psnr_run1}" got_nano)
psnr_to_nano("${golden_value}" want_nano)
math(EXPR diff_nano "${got_nano} - ${want_nano}")
if(diff_nano LESS 0)
  math(EXPR diff_nano "0 - ${diff_nano}")
endif()
# 1e-6 dB tolerance = 1000 nano-dB.
if(diff_nano GREATER 1000)
  message(FATAL_ERROR "PSNR drifted from golden: got ${psnr_run1}, "
                      "want ${golden_value} (|diff| = ${diff_nano} nano-dB)")
endif()

message(STATUS "golden regression OK: psnr=${psnr_run1} "
               "(golden ${golden_value}, |diff| ${diff_nano} nano-dB)")
