#!/usr/bin/env bash
# Sanitizer smoke: configure + build the `sanitize` (ASan+UBSan) and `tsan`
# presets and run the `concurrency`-labelled tests under each. This is the
# commit-gate for the threaded serving engine — the labelled suites cover the
# thread pool (partitioned and global), the sharded ReceiverServer (routing,
# stealing, shutdown drain), and the serve_tool end-to-end smoke.
#
# Usage: scripts/sanitize_smoke.sh [tsan|sanitize]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${1:-}")
if [[ -z "${presets[0]}" ]]; then
  presets=(sanitize tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)
for preset in "${presets[@]}"; do
  echo "=== ${preset}: configure + build ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: ctest -L concurrency ==="
  ctest --test-dir "build-${preset}" -L concurrency \
        --output-on-failure -j 1
done
echo "sanitize smoke passed: ${presets[*]}"
