#!/usr/bin/env bash
# Sanitizer smoke: configure + build the `sanitize` (ASan+UBSan) and `tsan`
# presets and run the `concurrency`- and `codec`-labelled tests under each.
# This is the commit-gate for the threaded serving engine — the labelled
# suites cover the thread pool (partitioned and global), the sharded
# ReceiverServer (routing, stealing, shutdown drain), and the serve_tool
# end-to-end smoke — and for the context-mixing entropy coder, whose fuzz
# suites (truncated / bit-flipped cm streams, random range-coder input) are
# exactly the kind of parsing code sanitizers are for. A codec_tool transcode
# round trip runs as an end-to-end smoke under each preset too.
#
# test_plan rides the `concurrency` label: it exercises the compiled
# inference plan (arena offsets, fused kernels, per-replica plan caches)
# under concurrent submits, so ASan/UBSan validate the liveness-assigned
# arena slicing and TSan the sharded servers' per-replica plan reuse.
#
# test_serve_anytime and test_tiling ride the same label: the first drives
# the ResultStream channel (bounded drop-oldest buffer, terminal promise)
# and progressive delivery from 3 workers — the producer/consumer pairing
# TSan exists for — and the second fans MCU-aligned tile sub-requests out
# across a 3-worker server and stitches them back under load.
#
# Both presets compile the fault-injection sites in (DCDIFF_FAULT_INJECTION),
# so the `fault`-labelled stage runs the full scenario suites (injected
# stalls, throws, corruption, clock skew — see DESIGN.md §15) plus the
# soak_serve seed sweep under each sanitizer.
#
# Usage: scripts/sanitize_smoke.sh [tsan|sanitize]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${1:-}")
if [[ -z "${presets[0]}" ]]; then
  presets=(sanitize tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)
for preset in "${presets[@]}"; do
  echo "=== ${preset}: configure + build ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: ctest -L concurrency ==="
  ctest --test-dir "build-${preset}" -L concurrency \
        --output-on-failure -j 1
  echo "=== ${preset}: ctest -L codec ==="
  ctest --test-dir "build-${preset}" -L codec \
        --output-on-failure -j 1
  echo "=== ${preset}: ctest -L fault ==="
  ctest --test-dir "build-${preset}" -L fault \
        --output-on-failure -j 1
  echo "=== ${preset}: codec_tool transcode smoke ==="
  smoke_dir="build-${preset}/transcode_smoke"
  rm -rf "${smoke_dir}" && mkdir -p "${smoke_dir}"
  "build-${preset}/examples/codec_tool" demo "${smoke_dir}"
  "build-${preset}/examples/codec_tool" encode "${smoke_dir}/demo.ppm" \
      "${smoke_dir}/huff.jpg" 50
  "build-${preset}/examples/codec_tool" transcode "${smoke_dir}/huff.jpg" \
      "${smoke_dir}/cm.jpg"
  "build-${preset}/examples/codec_tool" transcode "${smoke_dir}/cm.jpg" \
      "${smoke_dir}/back.jpg" --to-huffman
  cmp "${smoke_dir}/huff.jpg" "${smoke_dir}/back.jpg"
done
echo "sanitize smoke passed: ${presets[*]}"
