#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on regressions.

Usage:
    bench_compare.py [options] BASELINE.json CANDIDATE.json
    bench_compare.py [options] --bench PATH/TO/bench_serve BASELINE.json
    bench_compare.py --coding [options] BASELINE.json CANDIDATE.json
    bench_compare.py --coding [options] --bench PATH/TO/bench_ablation_coding \\
        BASELINE.json

With --bench, the candidate report is produced by running the bench binary
into a temporary file first (this is how the optional `bench_guard` and
`coding_guard` CTests use it).

Default mode compares bench_serve reports: sweep points are matched by worker
count. A point regresses when the candidate's images_per_sec drops, or its
p99_e2e_ms rises, by more than --max-regression-pct relative to the baseline.
p99 is only compared when both reports carry it: reports written before the
provenance/p99 schema (e.g. the checked-in BENCH_pr5.json) lack the field and
are tolerated.

--plan compares bench_serve --plan reports (compiled plan vs eager tape):
sweep points are matched by (mode, path). A point regresses when the
candidate's images_per_sec drops by more than --max-regression-pct relative
to the baseline; the planned-vs-eager serial speedup of both reports is
printed, and the candidate failing its own >= 1.3x win condition is a
regression regardless of the baseline.

--anytime compares bench_serve --anytime reports (deadline-degraded
serving): sweep points are matched by deadline_ms. A point regresses when
either per-tier p99 (p99_latency_tier_ms / p99_quality_tier_ms) rises by
more than --max-regression-pct relative to the baseline; degraded_share is
printed for context (it is a policy outcome, not a regression axis). The
candidate failing its own enforced win condition — every request answered
with an image, no kDeadlineExceeded — is a regression regardless of the
baseline.

--coding compares bench_ablation_coding reports: records are matched by
(dataset, image). A record regresses when the candidate's bpp_cm rises by
more than --max-regression-pct relative to the baseline — the context-mixing
coder must not quietly lose compression ground. bpp_huffman comes from fixed
Annex-K tables, so any change there means the transform/eval inputs moved and
the comparison is skipped as not comparable. Coding bpp is deterministic, so
unlike serve throughput it compares fine across machines; comparability only
needs the same eval_size.

Exit codes: 0 = no regression, 1 = regression (or malformed input),
77 = skipped because the reports are not comparable (different host_cores
for serve — throughput numbers from different machines say nothing about a
code change — or different eval_size / huffman baseline for coding; CTest
maps 77 to SKIP via SKIP_RETURN_CODE).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SKIP = 77


def load_report(path, bench="serve_workers", body="sweep"):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(EXIT_REGRESSION)
    if report.get("bench") != bench or body not in report:
        print(f"bench_compare: {path} is not a {bench} report",
              file=sys.stderr)
        sys.exit(EXIT_REGRESSION)
    return report


def provenance_line(name, report):
    if "host_cores" in report:
        scope = f"host_cores={report.get('host_cores')}"
    else:
        scope = f"eval_size={report.get('eval_size')}"
    prov = report.get("provenance")
    if not prov:
        return f"  {name}: {scope} (no provenance; pre-schema report)"
    env = prov.get("env") or {}
    env_note = f", {len(env)} DCDIFF_* env override(s)" if env else ""
    return (f"  {name}: {scope} "
            f"git_sha={prov.get('git_sha')} build_type={prov.get('build_type')}"
            f"{env_note}")


def pct_change(base, cand):
    if base == 0:
        return 0.0
    return (cand - base) / base * 100.0


def compare(baseline, candidate, max_pct):
    base_points = {p["workers"]: p for p in baseline["sweep"]}
    cand_points = {p["workers"]: p for p in candidate["sweep"]}
    shared = sorted(set(base_points) & set(cand_points))
    if not shared:
        print("bench_compare: no common worker counts between the sweeps",
              file=sys.stderr)
        return EXIT_REGRESSION

    failures = []
    print(f"{'workers':>7} {'metric':>14} {'baseline':>10} {'candidate':>10} "
          f"{'change':>8}")
    for w in shared:
        b, c = base_points[w], cand_points[w]

        ips_b, ips_c = b.get("images_per_sec"), c.get("images_per_sec")
        if ips_b is not None and ips_c is not None:
            change = pct_change(ips_b, ips_c)
            flag = ""
            if change < -max_pct:
                flag = "  REGRESSION"
                failures.append(
                    f"workers={w}: images_per_sec {ips_b:.3f} -> {ips_c:.3f} "
                    f"({change:+.1f}%, limit -{max_pct:.1f}%)")
            print(f"{w:>7} {'images_per_sec':>14} {ips_b:>10.3f} "
                  f"{ips_c:>10.3f} {change:>+7.1f}%{flag}")

        p99_b, p99_c = b.get("p99_e2e_ms"), c.get("p99_e2e_ms")
        if p99_b is None or p99_c is None:
            which = "baseline" if p99_b is None else "candidate"
            print(f"{w:>7} {'p99_e2e_ms':>14} {'(skipped: no p99 in ' + which + ' report)':>30}")
            continue
        change = pct_change(p99_b, p99_c)
        flag = ""
        if change > max_pct:
            flag = "  REGRESSION"
            failures.append(
                f"workers={w}: p99_e2e_ms {p99_b:.3f} -> {p99_c:.3f} "
                f"({change:+.1f}%, limit +{max_pct:.1f}%)")
        print(f"{w:>7} {'p99_e2e_ms':>14} {p99_b:>10.3f} {p99_c:>10.3f} "
              f"{change:>+7.1f}%{flag}")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nbench_compare: OK ({len(shared)} point(s) within "
          f"{max_pct:.1f}%)")
    return EXIT_OK


def compare_plan(baseline, candidate, max_pct):
    base_points = {(p["mode"], p["path"]): p for p in baseline["sweep"]}
    cand_points = {(p["mode"], p["path"]): p for p in candidate["sweep"]}
    shared = sorted(set(base_points) & set(cand_points))
    if not shared:
        print("bench_compare: no common (mode, path) points between sweeps",
              file=sys.stderr)
        return EXIT_REGRESSION

    failures = []
    print(f"{'mode':>8} {'path':>7} {'metric':>14} {'baseline':>10} "
          f"{'candidate':>10} {'change':>8}")
    for key in shared:
        b, c = base_points[key], cand_points[key]
        change = pct_change(b["images_per_sec"], c["images_per_sec"])
        flag = ""
        if change < -max_pct:
            flag = "  REGRESSION"
            failures.append(
                f"mode={key[0]} path={key[1]}: images_per_sec "
                f"{b['images_per_sec']:.3f} -> {c['images_per_sec']:.3f} "
                f"({change:+.1f}%, limit -{max_pct:.1f}%)")
        print(f"{key[0]:>8} {key[1]:>7} {'images_per_sec':>14} "
              f"{b['images_per_sec']:>10.3f} {c['images_per_sec']:>10.3f} "
              f"{change:>+7.1f}%{flag}")

    sb = (baseline.get("speedup") or {}).get("serial")
    sc = (candidate.get("speedup") or {}).get("serial")
    if sb is not None and sc is not None:
        print(f"\nplanned-vs-eager serial speedup: baseline {sb:.2f}x, "
              f"candidate {sc:.2f}x")
    win = candidate.get("win_condition") or {}
    if win.get("enforced") and not win.get("met"):
        failures.append(
            f"candidate misses its own win condition "
            f"(required_speedup={win.get('required_speedup')}, "
            f"serial speedup={sc})")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nbench_compare: OK ({len(shared)} point(s) within "
          f"{max_pct:.1f}%)")
    return EXIT_OK


def compare_anytime(baseline, candidate, max_pct):
    base_points = {p["deadline_ms"]: p for p in baseline["sweep"]}
    cand_points = {p["deadline_ms"]: p for p in candidate["sweep"]}
    shared = sorted(set(base_points) & set(cand_points))
    if not shared:
        # Deadlines are calibrated from a warm request, so a host-speed
        # change can shift every sweep point; that is a comparability gap,
        # not a regression.
        print("bench_compare: SKIP — no common deadline_ms points between "
              "the sweeps (calibrated deadlines moved)", file=sys.stderr)
        return EXIT_SKIP

    failures = []
    print(f"{'deadline_ms':>11} {'metric':>20} {'baseline':>10} "
          f"{'candidate':>10} {'change':>8}")
    for d in shared:
        b, c = base_points[d], cand_points[d]
        for metric in ("p99_latency_tier_ms", "p99_quality_tier_ms"):
            mb, mc = b.get(metric), c.get(metric)
            if mb is None or mc is None:
                continue
            change = pct_change(mb, mc)
            flag = ""
            if change > max_pct:
                flag = "  REGRESSION"
                failures.append(
                    f"deadline_ms={d}: {metric} {mb:.3f} -> {mc:.3f} "
                    f"({change:+.1f}%, limit +{max_pct:.1f}%)")
            print(f"{d:>11} {metric:>20} {mb:>10.3f} {mc:>10.3f} "
                  f"{change:>+7.1f}%{flag}")
        print(f"{d:>11} {'degraded_share':>20} "
              f"{b.get('degraded_share', 0.0):>10.2f} "
              f"{c.get('degraded_share', 0.0):>10.2f}")

    win = candidate.get("win_condition") or {}
    if win.get("enforced") and not win.get("met"):
        failures.append(
            f"candidate misses its own win condition: {win.get('required')}")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nbench_compare: OK ({len(shared)} point(s) within "
          f"{max_pct:.1f}%)")
    return EXIT_OK


def compare_coding(baseline, candidate, max_pct):
    base_recs = {(r["dataset"], r["image"]): r for r in baseline["records"]}
    cand_recs = {(r["dataset"], r["image"]): r for r in candidate["records"]}
    shared = sorted(set(base_recs) & set(cand_recs))
    if not shared:
        print("bench_compare: no common (dataset, image) records",
              file=sys.stderr)
        return EXIT_REGRESSION

    # bpp_huffman is fixed Annex-K tables on the same deterministic inputs:
    # a mismatch means the eval substrate itself changed, and cm-vs-cm deltas
    # would be measuring the wrong thing.
    for key in shared:
        b, c = base_recs[key], cand_recs[key]
        if abs(b["bpp_huffman"] - c["bpp_huffman"]) > 1e-9:
            print(f"bench_compare: SKIP — bpp_huffman differs on "
                  f"{key[0]} image {key[1]} ({b['bpp_huffman']:.6f} vs "
                  f"{c['bpp_huffman']:.6f}); eval inputs changed, cm deltas "
                  f"not comparable", file=sys.stderr)
            return EXIT_SKIP

    failures = []
    print(f"{'dataset':>10} {'img':>4} {'bpp_huffman':>12} {'cm_base':>9} "
          f"{'cm_cand':>9} {'change':>8}")
    for key in shared:
        b, c = base_recs[key], cand_recs[key]
        change = pct_change(b["bpp_cm"], c["bpp_cm"])
        flag = ""
        if change > max_pct:
            flag = "  REGRESSION"
            failures.append(
                f"{key[0]} image {key[1]}: bpp_cm {b['bpp_cm']:.4f} -> "
                f"{c['bpp_cm']:.4f} ({change:+.1f}%, limit +{max_pct:.1f}%)")
        print(f"{key[0]:>10} {key[1]:>4} {b['bpp_huffman']:>12.4f} "
              f"{b['bpp_cm']:>9.4f} {c['bpp_cm']:>9.4f} "
              f"{change:>+7.1f}%{flag}")

    mb = baseline.get("mean_cm_reduction_pct")
    mc = candidate.get("mean_cm_reduction_pct")
    if mb is not None and mc is not None:
        print(f"\nmean cm reduction vs huffman: baseline {mb:.2f}%, "
              f"candidate {mc:.2f}%")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nbench_compare: OK ({len(shared)} record(s) within "
          f"{max_pct:.1f}%)")
    return EXIT_OK


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", nargs="?",
                    help="candidate BENCH_*.json (omit with --bench)")
    ap.add_argument("--bench", metavar="BIN",
                    help="run this bench binary to produce the candidate")
    ap.add_argument("--coding", action="store_true",
                    help="compare bench_ablation_coding reports (bpp_cm) "
                         "instead of bench_serve sweeps")
    ap.add_argument("--plan", action="store_true",
                    help="compare bench_serve --plan reports (compiled plan "
                         "vs eager tape) instead of worker sweeps")
    ap.add_argument("--anytime", action="store_true",
                    help="compare bench_serve --anytime reports (deadline "
                         "sweep: per-tier p99 + degraded_share) instead of "
                         "worker sweeps")
    ap.add_argument("--max-regression-pct", type=float, default=15.0,
                    help="allowed regression in images_per_sec (drop), "
                         "p99_e2e_ms (rise), or with --coding bpp_cm (rise), "
                         "percent (default 15; coding_guard passes 2)")
    args = ap.parse_args()
    if bool(args.candidate) == bool(args.bench):
        ap.error("pass exactly one of CANDIDATE or --bench")
    if sum([args.coding, args.plan, args.anytime]) > 1:
        ap.error("--coding, --plan, and --anytime are mutually exclusive")

    if args.coding:
        kind = ("ablation_coding", "records")
    elif args.plan:
        kind = ("plan_modes", "sweep")
    elif args.anytime:
        kind = ("serve_anytime", "sweep")
    else:
        kind = ("serve_workers", "sweep")
    baseline = load_report(args.baseline, *kind)

    tmp = None
    try:
        if args.bench:
            fd, tmp = tempfile.mkstemp(prefix="bench_compare_", suffix=".json")
            os.close(fd)
            mode = (["--plan"] if args.plan else
                    ["--anytime"] if args.anytime else [])
            cmd = [args.bench] + mode + ["--out", tmp]
            print(f"bench_compare: running {' '.join(cmd)}")
            proc = subprocess.run(cmd)
            # The bench binaries exit non-zero when their own win-condition
            # gates fail; the comparison below is this script's verdict, so
            # only a missing report is fatal here.
            if not os.path.getsize(tmp):
                print(f"bench_compare: {args.bench} wrote no report "
                      f"(exit {proc.returncode})", file=sys.stderr)
                return EXIT_REGRESSION
            candidate = load_report(tmp, *kind)
        else:
            candidate = load_report(args.candidate, *kind)

        print(provenance_line("baseline ", baseline))
        print(provenance_line("candidate", candidate))

        if args.coding:
            if baseline.get("eval_size") != candidate.get("eval_size"):
                print(f"bench_compare: SKIP — eval_size differs "
                      f"({baseline.get('eval_size')} vs "
                      f"{candidate.get('eval_size')}); bpp not comparable",
                      file=sys.stderr)
                return EXIT_SKIP
            return compare_coding(baseline, candidate,
                                  args.max_regression_pct)

        if baseline.get("host_cores") != candidate.get("host_cores"):
            print(f"bench_compare: SKIP — host_cores differ "
                  f"({baseline.get('host_cores')} vs "
                  f"{candidate.get('host_cores')}); throughput is not "
                  f"comparable across machines", file=sys.stderr)
            return EXIT_SKIP

        if args.plan:
            return compare_plan(baseline, candidate, args.max_regression_pct)
        if args.anytime:
            return compare_anytime(baseline, candidate,
                                   args.max_regression_pct)
        return compare(baseline, candidate, args.max_regression_pct)
    finally:
        if tmp:
            os.unlink(tmp)


if __name__ == "__main__":
    sys.exit(main())
