#!/usr/bin/env python3
"""Compare two bench_serve BENCH_*.json reports and fail on regressions.

Usage:
    bench_compare.py [options] BASELINE.json CANDIDATE.json
    bench_compare.py [options] --bench PATH/TO/bench_serve BASELINE.json

With --bench, the candidate report is produced by running bench_serve into a
temporary file first (this is how the optional `bench_guard` CTest uses it).

Sweep points are matched by worker count. A point regresses when the
candidate's images_per_sec drops, or its p99_e2e_ms rises, by more than
--max-regression-pct relative to the baseline. p99 is only compared when both
reports carry it: reports written before the provenance/p99 schema (e.g. the
checked-in BENCH_pr5.json) lack the field and are tolerated.

Exit codes: 0 = no regression, 1 = regression (or malformed input),
77 = skipped because the reports are not comparable (different host_cores —
throughput numbers from different machines say nothing about a code change;
CTest maps 77 to SKIP via SKIP_RETURN_CODE).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SKIP = 77


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(EXIT_REGRESSION)
    if report.get("bench") != "serve_workers" or "sweep" not in report:
        print(f"bench_compare: {path} is not a bench_serve report",
              file=sys.stderr)
        sys.exit(EXIT_REGRESSION)
    return report


def provenance_line(name, report):
    prov = report.get("provenance")
    if not prov:
        return f"  {name}: host_cores={report.get('host_cores')} (no provenance; pre-schema report)"
    env = prov.get("env") or {}
    env_note = f", {len(env)} DCDIFF_* env override(s)" if env else ""
    return (f"  {name}: host_cores={report.get('host_cores')} "
            f"git_sha={prov.get('git_sha')} build_type={prov.get('build_type')}"
            f"{env_note}")


def pct_change(base, cand):
    if base == 0:
        return 0.0
    return (cand - base) / base * 100.0


def compare(baseline, candidate, max_pct):
    base_points = {p["workers"]: p for p in baseline["sweep"]}
    cand_points = {p["workers"]: p for p in candidate["sweep"]}
    shared = sorted(set(base_points) & set(cand_points))
    if not shared:
        print("bench_compare: no common worker counts between the sweeps",
              file=sys.stderr)
        return EXIT_REGRESSION

    failures = []
    print(f"{'workers':>7} {'metric':>14} {'baseline':>10} {'candidate':>10} "
          f"{'change':>8}")
    for w in shared:
        b, c = base_points[w], cand_points[w]

        ips_b, ips_c = b.get("images_per_sec"), c.get("images_per_sec")
        if ips_b is not None and ips_c is not None:
            change = pct_change(ips_b, ips_c)
            flag = ""
            if change < -max_pct:
                flag = "  REGRESSION"
                failures.append(
                    f"workers={w}: images_per_sec {ips_b:.3f} -> {ips_c:.3f} "
                    f"({change:+.1f}%, limit -{max_pct:.1f}%)")
            print(f"{w:>7} {'images_per_sec':>14} {ips_b:>10.3f} "
                  f"{ips_c:>10.3f} {change:>+7.1f}%{flag}")

        p99_b, p99_c = b.get("p99_e2e_ms"), c.get("p99_e2e_ms")
        if p99_b is None or p99_c is None:
            which = "baseline" if p99_b is None else "candidate"
            print(f"{w:>7} {'p99_e2e_ms':>14} {'(skipped: no p99 in ' + which + ' report)':>30}")
            continue
        change = pct_change(p99_b, p99_c)
        flag = ""
        if change > max_pct:
            flag = "  REGRESSION"
            failures.append(
                f"workers={w}: p99_e2e_ms {p99_b:.3f} -> {p99_c:.3f} "
                f"({change:+.1f}%, limit +{max_pct:.1f}%)")
        print(f"{w:>7} {'p99_e2e_ms':>14} {p99_b:>10.3f} {p99_c:>10.3f} "
              f"{change:>+7.1f}%{flag}")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nbench_compare: OK ({len(shared)} point(s) within "
          f"{max_pct:.1f}%)")
    return EXIT_OK


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", nargs="?",
                    help="candidate BENCH_*.json (omit with --bench)")
    ap.add_argument("--bench", metavar="BIN",
                    help="run this bench_serve binary to produce the candidate")
    ap.add_argument("--max-regression-pct", type=float, default=15.0,
                    help="allowed regression in images_per_sec (drop) or "
                         "p99_e2e_ms (rise), percent (default 15)")
    args = ap.parse_args()
    if bool(args.candidate) == bool(args.bench):
        ap.error("pass exactly one of CANDIDATE or --bench")

    baseline = load_report(args.baseline)

    tmp = None
    try:
        if args.bench:
            fd, tmp = tempfile.mkstemp(prefix="bench_compare_", suffix=".json")
            os.close(fd)
            cmd = [args.bench, "--out", tmp]
            print(f"bench_compare: running {' '.join(cmd)}")
            proc = subprocess.run(cmd)
            # bench_serve exits non-zero when its own speedup win-condition
            # fails; the comparison below is this script's verdict, so only a
            # missing report is fatal here.
            if not os.path.getsize(tmp):
                print(f"bench_compare: {args.bench} wrote no report "
                      f"(exit {proc.returncode})", file=sys.stderr)
                return EXIT_REGRESSION
            candidate = load_report(tmp)
        else:
            candidate = load_report(args.candidate)

        print(provenance_line("baseline ", baseline))
        print(provenance_line("candidate", candidate))

        if baseline.get("host_cores") != candidate.get("host_cores"):
            print(f"bench_compare: SKIP — host_cores differ "
                  f"({baseline.get('host_cores')} vs "
                  f"{candidate.get('host_cores')}); throughput is not "
                  f"comparable across machines", file=sys.stderr)
            return EXIT_SKIP

        return compare(baseline, candidate, args.max_regression_pct)
    finally:
        if tmp:
            os.unlink(tmp)


if __name__ == "__main__":
    sys.exit(main())
