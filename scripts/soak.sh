#!/usr/bin/env bash
# Schedule-perturbation soak for the serving stack (DESIGN.md §15).
#
# Builds the `fault` preset (Release + DCDIFF_FAULT_INJECTION=ON; override
# with --preset tsan / --preset sanitize to soak under a sanitizer) and runs
# bench/soak_serve over a seed sweep within a wall-clock budget. Every
# (seed, plan) cell plays a mixed workload — progressive, deadline-bound,
# tiled, abandoned streams — against a 3-worker server while named fault
# sites fire, and asserts the serving invariants (exactly one terminal
# Result per stream, typed outcomes, balanced accounting).
#
# On a violation soak_serve prints the failing plan string and the complete
# fault-event log, and this script preserves the JSON log; re-running with
#   DCDIFF_FAULT_PLAN='<printed plan>'
# reproduces the identical fault schedule (the whole point of seeding).
#
# Usage: scripts/soak.sh [--preset fault|tsan|sanitize] [--seeds N]
#                        [--requests N] [--budget-s S]
set -euo pipefail
cd "$(dirname "$0")/.."

preset=fault
seeds="${DCDIFF_SOAK_SEEDS:-8}"
requests="${DCDIFF_SOAK_REQUESTS:-12}"
budget_s="${DCDIFF_SOAK_BUDGET_S:-600}"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)   preset="$2"; shift 2 ;;
    --seeds)    seeds="$2"; shift 2 ;;
    --requests) requests="$2"; shift 2 ;;
    --budget-s) budget_s="$2"; shift 2 ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)
echo "=== soak: configure + build (${preset}) ==="
cmake --preset "${preset}"
cmake --build --preset "${preset}" -j "${jobs}" --target soak_serve

log="build-${preset}/soak_fault_log.json"
echo "=== soak: ${seeds} seeds x 4 plans, ${requests} req/cell, \
budget ${budget_s}s ==="
status=0
"build-${preset}/bench/soak_serve" --seeds "${seeds}" \
    --requests "${requests}" --budget-s "${budget_s}" --log "${log}" \
    || status=$?
if [[ ${status} -eq 77 ]]; then
  echo "soak: binary built without fault injection (skip)" >&2
  exit 77
elif [[ ${status} -ne 0 ]]; then
  echo "soak: FAILED (status ${status}); fault log at ${log}" >&2
  exit "${status}"
fi
echo "soak passed (${preset})"
