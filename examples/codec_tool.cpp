// Command-line codec tool: exercises the library on user-supplied PPM/PGM
// files (or generated test images) without writing any C++.
//
//   codec_tool encode    <in.ppm> <out.jpg> [quality] [--drop-dc] [--cm]
//   codec_tool decode    <in.jpg> <out.ppm>
//   codec_tool recover   <in.jpg> <out.ppm> [smartcom|tii|icip|dcdiff]
//   codec_tool transcode <in.jpg> <out.jpg> [--to-huffman]
//   codec_tool demo      <out_dir>        (writes a sample scene + variants)
//
// `recover` expects a DC-dropped file (as produced by encode --drop-dc) and
// runs the selected receiver-side method; dcdiff trains/loads cached weights
// on first use.
//
// `transcode` re-entropy-codes losslessly between the Annex-K Huffman scan
// and the context-mixing range coder (default direction: to cm; --to-huffman
// for the reverse). The coefficient planes round-trip bit-identically — the
// tool verifies this on every run before writing the output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "baselines/dc_recovery.h"
#include "baselines/tii2021.h"
#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

using namespace dcdiff;

namespace {

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(f), {});
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

int cmd_encode(int argc, char** argv) {
  if (argc < 4) return 1;
  const Image img = read_pnm(argv[2]);
  const int quality = argc > 4 && argv[4][0] != '-' ? std::atoi(argv[4]) : 50;
  bool drop = false, cm = false;
  for (int i = 4; i < argc; ++i) {
    drop = drop || !std::strcmp(argv[i], "--drop-dc");
    cm = cm || !std::strcmp(argv[i], "--cm");
  }
  jpeg::CoeffImage ci = jpeg::forward_transform(img, quality);
  const size_t full_bits = jpeg::entropy_bit_count(ci);
  if (drop) jpeg::drop_dc(ci);
  const auto kind = cm ? jpeg::EntropyKind::kCm : jpeg::EntropyKind::kHuffman;
  const auto bytes = jpeg::encode_jfif(ci, kind);
  write_file(argv[3], bytes);
  std::printf("%s: %dx%d Q%d%s%s -> %zu bytes (entropy %zu -> %zu bits)\n",
              argv[3], img.width(), img.height(), quality,
              drop ? " DC-dropped" : "", cm ? " cm" : "", bytes.size(),
              full_bits,
              cm ? jpeg::entropy_bit_count_cm(ci)
                 : jpeg::entropy_bit_count(ci));
  return 0;
}

int cmd_decode(int argc, char** argv) {
  if (argc < 4) return 1;
  const Image img = jpeg::jpeg_decode(read_file(argv[2]));
  write_pnm(img, argv[3]);
  std::printf("%s: %dx%d decoded\n", argv[3], img.width(), img.height());
  return 0;
}

int cmd_recover(int argc, char** argv) {
  if (argc < 4) return 1;
  const jpeg::CoeffImage ci = jpeg::decode_jfif(read_file(argv[2]));
  const std::string method = argc > 4 ? argv[4] : "dcdiff";
  Image out;
  if (method == "smartcom") {
    out = baselines::recover_dc(ci, baselines::RecoveryMethod::kSmartCom2019);
  } else if (method == "tii") {
    out = baselines::recover_tii2021(ci, baselines::shared_corrector());
  } else if (method == "icip") {
    out = baselines::recover_dc(ci, baselines::RecoveryMethod::kICIP2022);
  } else if (method == "dcdiff") {
    out = core::ModelPool::instance().default_instance()->reconstruct(ci);
  } else {
    std::fprintf(stderr, "unknown method %s\n", method.c_str());
    return 1;
  }
  write_pnm(out, argv[3]);
  std::printf("%s: recovered with %s\n", argv[3], method.c_str());
  return 0;
}

int cmd_transcode(int argc, char** argv) {
  if (argc < 4) return 1;
  bool to_huffman = false;
  for (int i = 4; i < argc; ++i) {
    to_huffman = to_huffman || !std::strcmp(argv[i], "--to-huffman");
  }
  const auto in_bytes = read_file(argv[2]);
  const auto in_kind = jpeg::detect_entropy_kind(in_bytes);
  const auto out_kind =
      to_huffman ? jpeg::EntropyKind::kHuffman : jpeg::EntropyKind::kCm;
  const jpeg::CoeffImage ci = jpeg::decode_jfif(in_bytes);
  const auto out_bytes = jpeg::encode_jfif(ci, out_kind);

  // Lossless by construction; verify anyway so a model regression can never
  // silently ship a stream that decodes to different coefficients.
  const jpeg::CoeffImage back = jpeg::decode_jfif(out_bytes);
  for (size_t c = 0; c < ci.comps.size(); ++c) {
    if (ci.comps[c].blocks != back.comps[c].blocks) {
      std::fprintf(stderr, "transcode: coefficient mismatch in component "
                           "%zu\n", c);
      return 1;
    }
  }
  write_file(argv[3], out_bytes);
  std::printf("%s: %s -> %s, %zu -> %zu bytes (%+.1f%%)\n", argv[3],
              in_kind == jpeg::EntropyKind::kCm ? "cm" : "huffman",
              out_kind == jpeg::EntropyKind::kCm ? "cm" : "huffman",
              in_bytes.size(), out_bytes.size(),
              100.0 * (static_cast<double>(out_bytes.size()) /
                           static_cast<double>(in_bytes.size()) -
                       1.0));
  return 0;
}

int cmd_demo(int argc, char** argv) {
  const std::string dir = argc > 2 ? argv[2] : ".";
  const Image img = data::dataset_image(data::DatasetId::kKodak, 5, 64);
  write_pnm(img, dir + "/demo.ppm");
  std::printf("wrote %s/demo.ppm -- try:\n", dir.c_str());
  std::printf("  codec_tool encode %s/demo.ppm %s/demo.jpg 50 --drop-dc\n",
              dir.c_str(), dir.c_str());
  std::printf("  codec_tool recover %s/demo.jpg %s/demo_rec.ppm dcdiff\n",
              dir.c_str(), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: codec_tool encode|decode|recover|transcode|demo "
                 "...\n");
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "encode") return cmd_encode(argc, argv);
    if (cmd == "decode") return cmd_decode(argc, argv);
    if (cmd == "recover") return cmd_recover(argc, argv);
    if (cmd == "transcode") return cmd_transcode(argc, argv);
    if (cmd == "demo") return cmd_demo(argc, argv);
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
