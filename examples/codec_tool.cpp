// Command-line codec tool: exercises the library on user-supplied PPM/PGM
// files (or generated test images) without writing any C++.
//
//   codec_tool encode  <in.ppm> <out.jpg> [quality] [--drop-dc]
//   codec_tool decode  <in.jpg> <out.ppm>
//   codec_tool recover <in.jpg> <out.ppm> [smartcom|tii|icip|dcdiff]
//   codec_tool demo    <out_dir>          (writes a sample scene + variants)
//
// `recover` expects a DC-dropped file (as produced by encode --drop-dc) and
// runs the selected receiver-side method; dcdiff trains/loads cached weights
// on first use.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "baselines/dc_recovery.h"
#include "baselines/tii2021.h"
#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

using namespace dcdiff;

namespace {

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(f), {});
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

int cmd_encode(int argc, char** argv) {
  if (argc < 4) return 1;
  const Image img = read_pnm(argv[2]);
  const int quality = argc > 4 && argv[4][0] != '-' ? std::atoi(argv[4]) : 50;
  bool drop = false;
  for (int i = 4; i < argc; ++i) drop = drop || !std::strcmp(argv[i], "--drop-dc");
  jpeg::CoeffImage ci = jpeg::forward_transform(img, quality);
  const size_t full_bits = jpeg::entropy_bit_count(ci);
  if (drop) jpeg::drop_dc(ci);
  const auto bytes = jpeg::encode_jfif(ci);
  write_file(argv[3], bytes);
  std::printf("%s: %dx%d Q%d%s -> %zu bytes (entropy %zu -> %zu bits)\n",
              argv[3], img.width(), img.height(), quality,
              drop ? " DC-dropped" : "", bytes.size(), full_bits,
              jpeg::entropy_bit_count(ci));
  return 0;
}

int cmd_decode(int argc, char** argv) {
  if (argc < 4) return 1;
  const Image img = jpeg::jpeg_decode(read_file(argv[2]));
  write_pnm(img, argv[3]);
  std::printf("%s: %dx%d decoded\n", argv[3], img.width(), img.height());
  return 0;
}

int cmd_recover(int argc, char** argv) {
  if (argc < 4) return 1;
  const jpeg::CoeffImage ci = jpeg::decode_jfif(read_file(argv[2]));
  const std::string method = argc > 4 ? argv[4] : "dcdiff";
  Image out;
  if (method == "smartcom") {
    out = baselines::recover_dc(ci, baselines::RecoveryMethod::kSmartCom2019);
  } else if (method == "tii") {
    out = baselines::recover_tii2021(ci, baselines::shared_corrector());
  } else if (method == "icip") {
    out = baselines::recover_dc(ci, baselines::RecoveryMethod::kICIP2022);
  } else if (method == "dcdiff") {
    out = core::ModelPool::instance().default_instance()->reconstruct(ci);
  } else {
    std::fprintf(stderr, "unknown method %s\n", method.c_str());
    return 1;
  }
  write_pnm(out, argv[3]);
  std::printf("%s: recovered with %s\n", argv[3], method.c_str());
  return 0;
}

int cmd_demo(int argc, char** argv) {
  const std::string dir = argc > 2 ? argv[2] : ".";
  const Image img = data::dataset_image(data::DatasetId::kKodak, 5, 64);
  write_pnm(img, dir + "/demo.ppm");
  std::printf("wrote %s/demo.ppm -- try:\n", dir.c_str());
  std::printf("  codec_tool encode %s/demo.ppm %s/demo.jpg 50 --drop-dc\n",
              dir.c_str(), dir.c_str());
  std::printf("  codec_tool recover %s/demo.jpg %s/demo_rec.ppm dcdiff\n",
              dir.c_str(), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: codec_tool encode|decode|recover|demo ...\n");
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "encode") return cmd_encode(argc, argv);
    if (cmd == "decode") return cmd_decode(argc, argv);
    if (cmd == "recover") return cmd_recover(argc, argv);
    if (cmd == "demo") return cmd_demo(argc, argv);
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
