// serve_tool: drive the batched receiver serving engine end to end.
//
// Encodes N Kodak-style images with the DC-dropping sender, then plays them
// against a ReceiverServer from M concurrent client sessions. Prints
// throughput, latency percentiles, and the server's own accounting — the
// numbers an operator would watch in production.
//
// Usage: serve_tool [num_images] [num_clients] [--stats-dump <path>]
//
// --stats-dump writes the server's introspection snapshot after the run:
// <path> gets the JSON document (metrics registry + per-worker server
// state + rolling SLO windows), <path>.prom the Prometheus exposition.
//
// Knobs (environment):
//   DCDIFF_QUICKSTART_FAST=1      tiny model (seconds to train; used by the
//                                 `serve_smoke` CTest)
//   DCDIFF_SERVE_MAX_BATCH        requests fused per model call (default 4)
//   DCDIFF_SERVE_BATCH_TIMEOUT_MS microbatch window (default 2)
//   DCDIFF_SERVE_QUEUE_CAP        queue bound; beyond it submits are rejected
//   DCDIFF_SERVE_WORKERS          batching worker threads
//   DCDIFF_SERVE_MIN_STEPS        degraded-service quality floor (default 1;
//                                 0 restores fail-fast deadline errors)
//   DCDIFF_STATS_INTERVAL_MS      periodic in-process snapshot refresh
//   DCDIFF_STATS_FILE             periodic snapshot destination
//   DCDIFF_FLIGHT_RECORDER_FILE   auto-dump path for the flight recorder
//   DCDIFF_SERVE_DEADLINE_MS      per-request deadline on every submission;
//                                 with degraded service enabled (the
//                                 default) expired requests come back as
//                                 valid coarser images (outcome kDegraded),
//                                 not failures
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "image/image.h"
#include "metrics/metrics.h"
#include "obs/env.h"
#include "obs/metrics.h"
#include "serve/server.h"

using namespace dcdiff;

namespace {

core::DCDiffConfig fast_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "quickfast_ae";
  cfg.tag = "quickfast";
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stats_dump;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats-dump") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--stats-dump requires a path\n");
        return 2;
      }
      stats_dump = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int num_images = positional.size() > 0 ? std::atoi(positional[0]) : 8;
  const int num_clients = positional.size() > 1 ? std::atoi(positional[1]) : 2;
  if (num_images <= 0 || num_clients <= 0 || positional.size() > 2) {
    std::fprintf(stderr,
                 "usage: %s [num_images>0] [num_clients>0] "
                 "[--stats-dump <path>]\n",
                 argv[0]);
    return 2;
  }

  const bool fast = obs::env_int("DCDIFF_QUICKSTART_FAST", 0) > 0;
  std::printf("serve_tool: %d images, %d client sessions, %s model\n",
              num_images, num_clients, fast ? "quickstart-fast" : "full");

  auto model = fast ? core::ModelPool::instance().get(fast_config())
                    : core::ModelPool::instance().default_instance();

  // Sender side: DC-dropped bitstreams for a spread of dataset images.
  const int size = 2 * model->config().image_size;
  std::vector<std::vector<uint8_t>> bitstreams;
  std::vector<Image> originals;
  for (int i = 0; i < num_images; ++i) {
    originals.push_back(data::dataset_image(data::DatasetId::kKodak, i, size));
    bitstreams.push_back(core::sender_encode(originals.back()).bytes);
  }

  serve::ReceiverServer server(serve::ServerConfig::from_env(), model);
  const auto& cfg = server.config();
  std::printf("server: max_batch=%d batch_timeout_ms=%d queue_capacity=%d "
              "workers=%d min_steps=%d\n",
              cfg.max_batch, cfg.batch_timeout_ms, cfg.queue_capacity,
              cfg.workers, cfg.min_steps);

  // Each client session submits its share of the stream concurrently;
  // per-request accounting is by task outcome (complete / degraded /
  // rejected), with transport errors only on the rejected leg.
  const int deadline_ms = obs::env_int("DCDIFF_SERVE_DEADLINE_MS", 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::vector<int> complete_counts(static_cast<size_t>(num_clients), 0);
  std::vector<int> degraded_counts(static_cast<size_t>(num_clients), 0);
  std::vector<int> rejected_counts(static_cast<size_t>(num_clients), 0);
  std::vector<double> psnr_sums(static_cast<size_t>(num_clients), 0.0);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      serve::Session session = server.open_session();
      std::vector<std::future<serve::Result>> futs;
      std::vector<int> idx;
      for (int i = c; i < num_images; i += num_clients) {
        serve::ReconstructRequest req;
        req.jfif = bitstreams[static_cast<size_t>(i)];
        req.deadline_ms = deadline_ms;
        futs.push_back(session.submit_future(req));
        idx.push_back(i);
      }
      for (size_t k = 0; k < futs.size(); ++k) {
        serve::Result r = futs[k].get();
        switch (r.outcome) {
          case serve::Outcome::kComplete:
            complete_counts[static_cast<size_t>(c)]++;
            break;
          case serve::Outcome::kDegraded:
            degraded_counts[static_cast<size_t>(c)]++;
            break;
          case serve::Outcome::kRejected:
            rejected_counts[static_cast<size_t>(c)]++;
            std::fprintf(stderr, "request %d rejected: %s\n", idx[k],
                         r.status.to_string().c_str());
            continue;  // no image to score
        }
        psnr_sums[static_cast<size_t>(c)] +=
            metrics::psnr(originals[static_cast<size_t>(idx[k])], r.image);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  int complete = 0, degraded = 0, rejected = 0;
  double psnr_sum = 0;
  for (int c = 0; c < num_clients; ++c) {
    complete += complete_counts[static_cast<size_t>(c)];
    degraded += degraded_counts[static_cast<size_t>(c)];
    rejected += rejected_counts[static_cast<size_t>(c)];
    psnr_sum += psnr_sums[static_cast<size_t>(c)];
  }
  const int served = complete + degraded;
  const auto stats = server.stats();
  obs::Histogram& e2e = obs::histogram("serve.e2e_seconds");
  obs::Histogram& bsz = obs::histogram("serve.batch_size");
  std::printf("served %d/%d images in %.3fs (%.2f images/sec), "
              "mean PSNR %.2f dB\n",
              served, num_images, wall,
              static_cast<double>(served) / wall,
              served > 0 ? psnr_sum / served : 0.0);
  std::printf("outcomes: complete=%d degraded=%d rejected=%d\n", complete,
              degraded, rejected);
  std::printf("latency p50=%.1fms p99=%.1fms  mean batch=%.2f over %llu "
              "batches\n",
              1e3 * e2e.percentile(0.5), 1e3 * e2e.percentile(0.99),
              bsz.count() ? bsz.sum() / static_cast<double>(bsz.count()) : 0.0,
              static_cast<unsigned long long>(stats.batches));
  std::printf("stats: accepted=%llu completed=%llu degraded=%llu "
              "rejected_queue_full=%llu rejected_decode=%llu "
              "deadline_expired=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.degraded),
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(stats.rejected_decode),
              static_cast<unsigned long long>(stats.deadline_expired));

  if (!stats_dump.empty()) {
    if (server.dump_stats(stats_dump)) {
      std::printf("stats: wrote %s (JSON) and %s.prom (Prometheus)\n",
                  stats_dump.c_str(), stats_dump.c_str());
    } else {
      std::fprintf(stderr, "serve_tool: failed to write %s\n",
                   stats_dump.c_str());
      return 1;
    }
  }

  // With an operator-requested deadline under legacy fail-fast
  // (min_steps == 0), expired requests are the point of the exercise (they
  // feed the flight recorder), not a tool failure. In every other mode each
  // request must come back as a valid image — complete or degraded.
  const bool fail_fast = deadline_ms > 0 && cfg.min_steps == 0;
  const int expected = fail_fast ? served + rejected : served;
  if (expected != num_images) {
    std::fprintf(stderr, "serve_tool: %d requests failed\n",
                 num_images - expected);
    return 1;
  }
  if (deadline_ms > 0) {
    std::printf("deadline %dms: %d complete, %d degraded, %d expired\n",
                deadline_ms, complete, degraded, rejected);
  }
  std::printf("serve_tool: OK\n");
  return 0;
}
