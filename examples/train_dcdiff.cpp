// Training walkthrough: trains the three DCDiff components (stage-1
// autoencoder, stage-2 latent diffusion, FMPP) on the synthetic corpus and
// caches the weights for every other example/bench to reuse.
//
// Usage: train_dcdiff [stage1_steps stage2_steps fmpp_steps]
// Without arguments the library defaults are used. Weights land in
// $DCDIFF_CACHE_DIR (default ./dcdiff_weights).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

using namespace dcdiff;

int main(int argc, char** argv) {
  core::DCDiffConfig cfg;
  cfg.verbose = true;
  if (argc >= 4) {
    cfg.stage1_steps = std::atoi(argv[1]);
    cfg.stage2_steps = std::atoi(argv[2]);
    cfg.fmpp_steps = std::atoi(argv[3]);
    cfg.ae_tag = "ae_custom";
    cfg.tag = "custom";
  }
  std::printf("DCDiff training: stage1=%d stage2=%d fmpp=%d (batch %d, %dx%d crops)\n",
              cfg.stage1_steps, cfg.stage2_steps, cfg.fmpp_steps, cfg.batch,
              cfg.image_size, cfg.image_size);

  core::DCDiffModel model(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  model.train_or_load();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("training (or cache load) took %.1f s\n", secs);

  // Quick sanity evaluation on a few held-out Kodak-style images.
  metrics::QualityReport ae_avg{}, diff_avg{};
  const int n = 3;
  for (int i = 0; i < n; ++i) {
    const Image img = data::dataset_image(data::DatasetId::kKodak, i, 64);
    jpeg::CoeffImage ci = jpeg::forward_transform(img, 50);
    jpeg::drop_dc(ci);
    const Image ae = model.autoencode(img, ci);
    const Image rec = model.reconstruct(ci);
    const auto r1 = metrics::evaluate(img, ae);
    const auto r2 = metrics::evaluate(img, rec);
    ae_avg.psnr += r1.psnr / n;
    diff_avg.psnr += r2.psnr / n;
    diff_avg.lpips += r2.lpips / n;
    std::printf("  image %d: AE-oracle PSNR %.2f dB | DCDiff PSNR %.2f dB, LPIPS %.4f\n",
                i, r1.psnr, r2.psnr, r2.lpips);
  }
  std::printf("avg: AE-oracle %.2f dB (stage-1 bound), DCDiff %.2f dB\n",
              ae_avg.psnr, diff_avg.psnr);
  return 0;
}
