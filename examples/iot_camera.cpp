// IoT camera fleet scenario (the paper's motivating deployment).
//
// A fleet of low-power cameras streams surveillance frames to a cloud
// server. Each camera runs an unmodified JPEG encoder plus the zero-cost DC
// drop; the server reconstructs with DCDiff. The example accounts for the
// bandwidth saved across the fleet, verifies reconstruction quality on a few
// frames, and projects encoder throughput onto the two devices of Table IV.
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"
#include "sim/device.h"

using namespace dcdiff;

int main() {
  constexpr int kCameras = 4;
  constexpr int kFramesPerCamera = 6;
  constexpr int kFrameSize = 64;
  constexpr int kQuality = 50;

  size_t standard_bits = 0, dropped_bits = 0;
  std::vector<Image> frames;
  for (int cam = 0; cam < kCameras; ++cam) {
    for (int f = 0; f < kFramesPerCamera; ++f) {
      // Street-view-ish content (Urban100-style generator).
      const Image frame = data::dataset_image(
          data::DatasetId::kUrban100, cam * 100 + f, kFrameSize);
      const core::SenderOutput out = core::sender_encode(frame, kQuality);
      standard_bits += out.standard_bits;
      dropped_bits += out.dropped_bits;
      frames.push_back(frame);
    }
  }
  std::printf("fleet: %d cameras x %d frames\n", kCameras, kFramesPerCamera);
  std::printf("uplink: %zu bits standard JPEG -> %zu bits with DC drop "
              "(saved %.1f%%)\n",
              standard_bits, dropped_bits,
              100.0 * (1.0 - static_cast<double>(dropped_bits) /
                                 static_cast<double>(standard_bits)));

  // Server-side reconstruction spot check on the first frame per camera.
  std::printf("\nserver reconstruction (DCDiff):\n");
  for (int cam = 0; cam < kCameras; ++cam) {
    const Image& frame = frames[static_cast<size_t>(cam * kFramesPerCamera)];
    jpeg::CoeffImage coeffs = jpeg::forward_transform(frame, kQuality);
    jpeg::drop_dc(coeffs);
    const Image rec =
        core::ModelPool::instance().default_instance()->reconstruct(coeffs);
    const auto r = metrics::evaluate(frame, rec);
    std::printf("  camera %d: PSNR %6.2f dB  LPIPS %.4f\n", cam, r.psnr,
                r.lpips);
  }

  // Camera-side cost: identical to standard JPEG (Table IV relation).
  const double host_mops = sim::calibrate_host_mops();
  for (const auto& profile : {sim::raspberry_pi4(), sim::cortex_a53()}) {
    const auto std_tp = sim::measure_encoder_throughput(
        frames, /*drop_dc=*/false, kQuality, profile, host_mops, 1);
    const auto drop_tp = sim::measure_encoder_throughput(
        frames, /*drop_dc=*/true, kQuality, profile, host_mops, 1);
    std::printf("\n%s: JPEG %.3f Gbps, DCDiff sender %.3f Gbps\n",
                profile.name.c_str(), std_tp.device_gbps,
                drop_tp.device_gbps);
  }
  return 0;
}
