// Quickstart: the full DCDiff story in one file.
//
// 1. A sender (any fixed-function JPEG camera) compresses an image at Q50
//    and zeroes every DC coefficient except the 4 corner anchors -- no
//    change to the JPEG implementation, ~25% fewer bits.
// 2. The receiver reconstructs the image three ways: naive decode (no
//    recovery), the strongest iterative baseline (ICIP 2022), and DCDiff's
//    diffusion-based DC estimation.
//
// Run from the repository root; weights are trained on first use and cached
// in ./dcdiff_weights (or train once with examples/train_dcdiff).
//
// Observability: set DCDIFF_TRACE_FILE to record a Chrome trace of the whole
// sender->receiver path (per-DDIM-step spans included), DCDIFF_LOG_LEVEL for
// structured logs, DCDIFF_METRICS_FILE for a metrics snapshot. With
// DCDIFF_QUICKSTART_FAST=1 a tiny model (seconds to train) replaces the full
// shared model -- used by the `quickstart_trace` CTest so instrumentation
// regressions surface in tier-1.
#include <chrono>
#include <cstdio>

#include "baselines/dc_recovery.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "data/datasets.h"
#include "image/image.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"
#include "obs/env.h"
#include "obs/trace.h"

using namespace dcdiff;

namespace {

// Every code path of the full model at toy scale (mirrors the tiny configs
// the pipeline tests use; cached under its own tags).
core::DCDiffConfig fast_config() {
  core::DCDiffConfig cfg;
  cfg.image_size = 32;
  cfg.stage1_steps = 6;
  cfg.stage2_steps = 6;
  cfg.fmpp_steps = 2;
  cfg.batch = 1;
  cfg.ddim_steps = 4;
  cfg.diffusion_T = 50;
  cfg.ae.base = 8;
  cfg.ae.ac_channels = 8;
  cfg.unet.base = 8;
  cfg.unet.temb_dim = 16;
  cfg.ae_tag = "quickfast_ae";
  cfg.tag = "quickfast";
  return cfg;
}

const core::DCDiffModel& quickstart_model() {
  if (obs::env_int("DCDIFF_QUICKSTART_FAST", 0) > 0) {
    static core::DCDiffModel* model = [] {
      auto* m = new core::DCDiffModel(fast_config());
      m->train_or_load();
      return m;
    }();
    return *model;
  }
  return *core::ModelPool::instance().default_instance();
}

}  // namespace

int main() {
  // A Kodak-style test image (procedural stand-in; see DESIGN.md).
  const Image original = data::dataset_image(data::DatasetId::kKodak, 3, 64);

  // ---- Sender ----
  const core::SenderOutput sent = core::sender_encode(original, /*quality=*/50);
  std::printf("sender: standard JPEG %zu bits -> DC-dropped %zu bits "
              "(%.1f%% of standard)\n",
              sent.standard_bits, sent.dropped_bits,
              100.0 * static_cast<double>(sent.dropped_bits) /
                  static_cast<double>(sent.standard_bits));

  // ---- Receiver ----
  const jpeg::CoeffImage received = jpeg::decode_jfif(sent.bytes);

  const Image naive = jpeg::inverse_transform(received);
  const Image icip =
      baselines::recover_dc(received, baselines::RecoveryMethod::kICIP2022);
  // Timed so that perf runs (DCDIFF_BENCH_JSON set, e.g. the perf_smoke
  // CTest) get a per-run receiver wall-time record alongside the obs
  // metrics snapshot.
  const auto t0 = std::chrono::steady_clock::now();
  const Image dcdiff = core::receiver_reconstruct(sent.bytes, quickstart_model());
  const double receiver_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  bench::JsonReport::instance().set_bench("quickstart");
  bench::JsonReport::instance().add_sample(
      "Kodak", "dcdiff", 3, receiver_seconds,
      metrics::evaluate(original, dcdiff));

  auto report = [&](const char* label, const Image& rec) {
    const auto r = metrics::evaluate(original, rec);
    std::printf("%-22s PSNR %6.2f dB  SSIM %.4f  MS-SSIM %.4f  LPIPS %.4f\n",
                label, r.psnr, r.ssim, r.ms_ssim, r.lpips);
  };
  std::printf("\nreceiver-side reconstruction quality:\n");
  report("naive decode (no DC)", naive);
  report("ICIP 2022 baseline", icip);
  report("DCDiff", dcdiff);
  // Machine-readable full-precision line for the cross-process golden
  // regression test (cmake/golden_regression_test.cmake): the 2-decimal
  // table above is far too coarse to catch a drifting kernel.
  std::printf("quickstart_golden psnr=%.9f\n",
              metrics::evaluate(original, dcdiff).psnr);

  write_pnm(original, "quickstart_original.ppm");
  write_pnm(dcdiff, "quickstart_dcdiff.ppm");
  std::printf("\nwrote quickstart_original.ppm / quickstart_dcdiff.ppm\n");
  if (obs::trace_enabled() && obs::flush_trace()) {
    std::printf("wrote Chrome trace to %s\n", obs::trace_file().c_str());
  }
  return 0;
}
