// Quickstart: the full DCDiff story in one file.
//
// 1. A sender (any fixed-function JPEG camera) compresses an image at Q50
//    and zeroes every DC coefficient except the 4 corner anchors -- no
//    change to the JPEG implementation, ~25% fewer bits.
// 2. The receiver reconstructs the image three ways: naive decode (no
//    recovery), the strongest iterative baseline (ICIP 2022), and DCDiff's
//    diffusion-based DC estimation.
//
// Run from the repository root; weights are trained on first use and cached
// in ./dcdiff_weights (or train once with examples/train_dcdiff).
#include <cstdio>

#include "baselines/dc_recovery.h"
#include "core/pipeline.h"
#include "data/datasets.h"
#include "image/image.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

using namespace dcdiff;

int main() {
  // A Kodak-style test image (procedural stand-in; see DESIGN.md).
  const Image original = data::dataset_image(data::DatasetId::kKodak, 3, 64);

  // ---- Sender ----
  const core::SenderOutput sent = core::sender_encode(original, /*quality=*/50);
  std::printf("sender: standard JPEG %zu bits -> DC-dropped %zu bits "
              "(%.1f%% of standard)\n",
              sent.standard_bits, sent.dropped_bits,
              100.0 * static_cast<double>(sent.dropped_bits) /
                  static_cast<double>(sent.standard_bits));

  // ---- Receiver ----
  const jpeg::CoeffImage received = jpeg::decode_jfif(sent.bytes);

  const Image naive = jpeg::inverse_transform(received);
  const Image icip =
      baselines::recover_dc(received, baselines::RecoveryMethod::kICIP2022);
  const Image dcdiff = core::shared_model().reconstruct(received);

  auto report = [&](const char* label, const Image& rec) {
    const auto r = metrics::evaluate(original, rec);
    std::printf("%-22s PSNR %6.2f dB  SSIM %.4f  MS-SSIM %.4f  LPIPS %.4f\n",
                label, r.psnr, r.ssim, r.ms_ssim, r.lpips);
  };
  std::printf("\nreceiver-side reconstruction quality:\n");
  report("naive decode (no DC)", naive);
  report("ICIP 2022 baseline", icip);
  report("DCDiff", dcdiff);

  write_pnm(original, "quickstart_original.ppm");
  write_pnm(dcdiff, "quickstart_dcdiff.ppm");
  std::printf("\nwrote quickstart_original.ppm / quickstart_dcdiff.ppm\n");
  return 0;
}
