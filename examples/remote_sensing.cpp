// Remote-sensing downstream task (Section IV-E): aerial images are
// compressed with DC drop at the sensor, reconstructed with DCDiff at the
// ground station, and fed to a land-cover classifier. The example shows
// that DCDiff's reconstructions barely affect classification accuracy.
#include <cstdio>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "downstream/classifier.h"
#include "jpeg/dcdrop.h"
#include "metrics/metrics.h"

using namespace dcdiff;

int main() {
  downstream::RSClassifier classifier;
  classifier.train_or_load();

  const int size = 64;
  const int start = 800000;  // held-out indices
  const int count = 24;

  const double clean =
      downstream::clean_accuracy(classifier, start, count, size);
  std::printf("classifier accuracy on clean aerial images: %.1f%%\n",
              100.0 * clean);

  const double reconstructed =
      classifier.accuracy(start, count, size, [](const Image& img) {
        jpeg::CoeffImage coeffs = jpeg::forward_transform(img, 50);
        jpeg::drop_dc(coeffs);
        return core::ModelPool::instance().default_instance()->reconstruct(
            coeffs);
      });
  std::printf("accuracy after DC drop + DCDiff reconstruction: %.1f%% "
              "(drop %.2f pp)\n",
              100.0 * reconstructed, 100.0 * (clean - reconstructed));

  // Show per-class behaviour on one example each.
  std::printf("\nper-class spot check:\n");
  for (int cls = 0; cls < data::kRemoteSensingClasses; ++cls) {
    const int idx = start + cls;  // labels cycle through classes
    const Image img = data::remote_sensing_image(idx, size);
    jpeg::CoeffImage coeffs = jpeg::forward_transform(img, 50);
    jpeg::drop_dc(coeffs);
    const Image rec =
        core::ModelPool::instance().default_instance()->reconstruct(coeffs);
    std::printf("  true=%-9s clean->%-9s dcdiff->%-9s (PSNR %.1f dB)\n",
                data::remote_sensing_class_name(data::remote_sensing_label(idx)),
                data::remote_sensing_class_name(classifier.predict(img)),
                data::remote_sensing_class_name(classifier.predict(rec)),
                metrics::psnr(img, rec));
  }
  return 0;
}
